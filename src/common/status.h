#ifndef TRAJKIT_COMMON_STATUS_H_
#define TRAJKIT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace trajkit {

/// Error category carried by a Status. Mirrors the RocksDB/Arrow convention
/// of a small closed enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kParseError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
  kUnavailable = 11,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic result of an operation that can fail.
///
/// TrajKit library code does not throw exceptions across API boundaries;
/// fallible operations return Status (or Result<T>, see result.h). Programmer
/// errors (violated preconditions documented as such) abort via TRAJKIT_CHECK
/// instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories below.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// The operation's deadline passed before it could run to completion.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A bounded resource (queue slot, quota) was exhausted; retrying later
  /// or with a higher priority may succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A transient failure (stalled dependency, flaky backend); the canonical
  /// retryable code — see common/retry.h.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define TRAJKIT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::trajkit::Status _trajkit_status = (expr);      \
    if (!_trajkit_status.ok()) return _trajkit_status; \
  } while (0)

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_STATUS_H_
