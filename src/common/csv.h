#ifndef TRAJKIT_COMMON_CSV_H_
#define TRAJKIT_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace trajkit {

/// A parsed delimiter-separated file: optional header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(std::string_view name) const;
};

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Skip this many lines before parsing (GeoLife PLT files carry 6
  /// preamble lines).
  int skip_lines = 0;
  /// Drop rows whose field count differs from the first data row instead of
  /// failing the parse.
  bool skip_malformed_rows = false;
};

/// Parses CSV text already in memory. Fields are not quote-aware (none of
/// the formats this library reads use quoting); values are whitespace-
/// stripped.
Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options);

/// Serializes a table (header + rows) to CSV text.
std::string WriteCsv(const CsvTable& table, char delimiter = ',');

/// Writes CSV text to a file, creating parent directories if needed.
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delimiter = ',');

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating), creating parent directories.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_CSV_H_
