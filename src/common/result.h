#ifndef TRAJKIT_COMMON_RESULT_H_
#define TRAJKIT_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace trajkit {

/// Either a value of type T or a non-OK Status. The moral equivalent of
/// arrow::Result / absl::StatusOr, reduced to what this library needs.
///
/// A Result constructed from a value is OK; a Result constructed from a
/// Status must carry a non-OK status (checked). Accessing the value of a
/// non-OK Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value, so `return value;` works in Result-returning
  /// functions (mirrors arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TRAJKIT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Precondition: ok().
  const T& value() const& {
    TRAJKIT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TRAJKIT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TRAJKIT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which it declares).
#define TRAJKIT_ASSIGN_OR_RETURN(lhs, rexpr)             \
  TRAJKIT_ASSIGN_OR_RETURN_IMPL_(                        \
      TRAJKIT_CONCAT_(_trajkit_result_, __LINE__), lhs, rexpr)

#define TRAJKIT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define TRAJKIT_CONCAT_(a, b) TRAJKIT_CONCAT_IMPL_(a, b)
#define TRAJKIT_CONCAT_IMPL_(a, b) a##b

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_RESULT_H_
