#include "common/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace trajkit {

int CsvTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  CsvTable table;
  size_t pos = 0;
  int line_number = 0;
  int skipped_preamble = 0;
  size_t expected_fields = 0;
  bool saw_first_data_row = false;
  bool header_pending = options.has_header;

  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (skipped_preamble < options.skip_lines) {
      ++skipped_preamble;
      continue;
    }
    if (StripWhitespace(line).empty()) continue;

    std::vector<std::string_view> fields = SplitString(line, options.delimiter);
    if (header_pending) {
      header_pending = false;
      for (std::string_view f : fields) {
        table.header.emplace_back(StripWhitespace(f));
      }
      continue;
    }
    if (!saw_first_data_row) {
      saw_first_data_row = true;
      expected_fields = fields.size();
      if (!table.header.empty() && table.header.size() != expected_fields) {
        return Status::ParseError(StrPrintf(
            "line %d: %zu fields but header has %zu columns", line_number,
            expected_fields, table.header.size()));
      }
    } else if (fields.size() != expected_fields) {
      if (options.skip_malformed_rows) continue;
      return Status::ParseError(
          StrPrintf("line %d: expected %zu fields, got %zu", line_number,
                    expected_fields, fields.size()));
    }
    std::vector<std::string> row;
    row.reserve(fields.size());
    for (std::string_view f : fields) {
      row.emplace_back(StripWhitespace(f));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content, options);
}

std::string WriteCsv(const CsvTable& table, char delimiter) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      out.append(row[i]);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delimiter) {
  return WriteStringToFile(path, WriteCsv(table, delimiter));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure on: " + path);
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::IoError("write failure on: " + path);
  }
  return Status::Ok();
}

}  // namespace trajkit
