#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/request_trace.h"

namespace trajkit::obs {
namespace {

std::string FormatBurn(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

std::vector<std::string> SplitList(std::string_view text, char sep) {
  std::vector<std::string> out;
  while (!text.empty()) {
    const size_t pos = text.find(sep);
    out.emplace_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return out;
}

bool ParseDouble(std::string_view value, double* out) {
  char buffer[64];
  if (value.empty() || value.size() >= sizeof(buffer)) return false;
  std::copy(value.begin(), value.end(), buffer);
  buffer[value.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buffer, &end);
  return end == buffer + value.size() && std::isfinite(*out);
}

bool ParseSize(std::string_view value, size_t* out) {
  double v = 0.0;
  if (!ParseDouble(value, &v) || v < 0 || v != std::floor(v)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

bool ParseSloSpecs(std::string_view text, std::vector<SloSpec>* specs,
                   std::string* error) {
  specs->clear();
  for (const std::string& entry : SplitList(text, ';')) {
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = "SLO spec \"" + entry + "\" is missing the <name>: prefix";
      return false;
    }
    SloSpec spec;
    spec.name = entry.substr(0, colon);
    bool have_type = false;
    for (const std::string& kv : SplitList(entry.substr(colon + 1), ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        *error = "SLO \"" + spec.name + "\": \"" + kv + "\" is not key=value";
        return false;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      bool ok = true;
      if (key == "type") {
        have_type = true;
        if (value == "latency") {
          spec.kind = SloSpec::Kind::kLatency;
        } else if (value == "ratio") {
          spec.kind = SloSpec::Kind::kRatio;
        } else {
          ok = false;
        }
      } else if (key == "metric") {
        spec.metric = value;
        ok = !value.empty();
      } else if (key == "ceiling_ms") {
        double ms = 0.0;
        ok = ParseDouble(value, &ms) && ms > 0;
        spec.ceiling_seconds = ms / 1000.0;
      } else if (key == "bad") {
        spec.bad = SplitList(value, '+');
        ok = !spec.bad.empty() && !spec.bad.front().empty();
      } else if (key == "total") {
        spec.total = SplitList(value, '+');
        ok = !spec.total.empty() && !spec.total.front().empty();
      } else if (key == "budget") {
        ok = ParseDouble(value, &spec.budget) && spec.budget > 0 &&
             spec.budget <= 1;
      } else if (key == "fast") {
        ok = ParseSize(value, &spec.fast_window) && spec.fast_window >= 1;
      } else if (key == "slow") {
        ok = ParseSize(value, &spec.slow_window) && spec.slow_window >= 1;
      } else if (key == "burn") {
        ok = ParseDouble(value, &spec.burn_threshold) &&
             spec.burn_threshold > 0;
      } else {
        *error = "SLO \"" + spec.name + "\": unknown key \"" + key + "\"";
        return false;
      }
      if (!ok) {
        *error = "SLO \"" + spec.name + "\": invalid value for \"" + key +
                 "\": \"" + value + "\"";
        return false;
      }
    }
    if (!have_type) {
      *error = "SLO \"" + spec.name + "\": missing type=latency|ratio";
      return false;
    }
    if (spec.kind == SloSpec::Kind::kLatency && spec.metric.empty()) {
      *error = "SLO \"" + spec.name + "\": type=latency requires metric=";
      return false;
    }
    if (spec.kind == SloSpec::Kind::kLatency && spec.ceiling_seconds <= 0) {
      *error = "SLO \"" + spec.name + "\": type=latency requires ceiling_ms=";
      return false;
    }
    if (spec.kind == SloSpec::Kind::kRatio &&
        (spec.bad.empty() || spec.total.empty())) {
      *error = "SLO \"" + spec.name + "\": type=ratio requires bad= and total=";
      return false;
    }
    if (spec.fast_window > spec.slow_window) {
      *error = "SLO \"" + spec.name + "\": fast window exceeds slow window";
      return false;
    }
    specs->push_back(std::move(spec));
  }
  return true;
}

SloEngine::SloEngine(TimeSeriesStore* store, MetricsRegistry* registry,
                     std::vector<SloSpec> specs)
    : store_(store), registry_(registry), specs_(std::move(specs)) {
  for (const SloSpec& spec : specs_) {
    if (spec.kind == SloSpec::Kind::kLatency) {
      store_->TrackHistogram(spec.metric);
    } else {
      for (const std::string& name : spec.bad) store_->TrackCounter(name);
      for (const std::string& name : spec.total) store_->TrackCounter(name);
    }
    SloState state;
    state.name = spec.name;
    states_.push_back(std::move(state));
    // Materialize the SLO's own metrics up front so exports show the
    // zero state (and the statusz section has something to render).
    registry_->GetCounter("slo." + spec.name + ".breaches");
    registry_->GetGauge("slo." + spec.name + ".budget_remaining").Set(1.0);
    registry_->GetGauge("slo." + spec.name + ".breached").Set(0.0);
  }
}

double SloEngine::BadFraction(const SloSpec& spec, size_t window) const {
  if (spec.kind == SloSpec::Kind::kLatency) {
    WindowedHistogram wh;
    if (!store_->WindowedHistogramDeltas(spec.metric, window, &wh) ||
        wh.count == 0) {
      return 0.0;
    }
    // Observations <= bound are good while bound <= ceiling: the
    // effective ceiling snaps up to the histogram's bucket resolution.
    uint64_t good = 0;
    for (size_t b = 0; b < wh.bounds.size(); ++b) {
      if (wh.bounds[b] <= spec.ceiling_seconds * (1 + 1e-12)) {
        good += wh.deltas[b];
      }
    }
    return static_cast<double>(wh.count - good) /
           static_cast<double>(wh.count);
  }
  double bad = 0.0, total = 0.0;
  for (const std::string& name : spec.bad) bad += store_->Delta(name, window);
  for (const std::string& name : spec.total) {
    total += store_->Delta(name, window);
  }
  if (total <= 0) return 0.0;
  return std::clamp(bad / total, 0.0, 1.0);
}

void SloEngine::Evaluate(uint64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    SloState& state = states_[i];
    state.burn_fast = BadFraction(spec, spec.fast_window) / spec.budget;
    state.burn_slow = BadFraction(spec, spec.slow_window) / spec.budget;
    state.budget_remaining = std::max(0.0, 1.0 - state.burn_slow);
    const bool breached = state.burn_fast >= spec.burn_threshold &&
                          state.burn_slow >= spec.burn_threshold;
    registry_->GetGauge("slo." + spec.name + ".budget_remaining")
        .Set(state.budget_remaining);
    if (breached != state.breached) {
      state.breached = breached;
      ++state.transitions;
      registry_->GetGauge("slo." + spec.name + ".breached")
          .Set(breached ? 1.0 : 0.0);
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "tick=%llu slo=",
                    static_cast<unsigned long long>(tick));
      std::string line = buffer;
      line += spec.name;
      line += breached ? " ok->breach" : " breach->ok";
      line += " burn_fast=" + FormatBurn(state.burn_fast);
      line += " burn_slow=" + FormatBurn(state.burn_slow);
      log_.push_back(std::move(line));
      if (breached) {
        registry_->GetCounter("slo." + spec.name + ".breaches").Increment();
        RequestTracer::Global().RecordGlobalInstant("slo_breach", tick);
      } else {
        RequestTracer::Global().RecordGlobalInstant("slo_recover", tick);
      }
    }
  }
}

bool SloEngine::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SloState& state : states_) {
    if (state.breached) return false;
  }
  return true;
}

std::vector<SloState> SloEngine::states() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_;
}

std::vector<std::string> SloEngine::transition_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace trajkit::obs
