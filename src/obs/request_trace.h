#ifndef TRAJKIT_OBS_REQUEST_TRACE_H_
#define TRAJKIT_OBS_REQUEST_TRACE_H_

// Request-scoped tracing: the per-request complement to the aggregate
// metrics in obs/metrics.h. A 64-bit TraceId is minted deterministically
// when a request enters the serving stack (session close or Submit) and
// travels with it through the BatchPredictor queue, the model predict,
// and every degradation/retry/fault decision. Each hop records a span
// (start/end pair) or an instant event into a lock-free per-thread ring
// buffer — the "flight recorder": fixed capacity, overwrite-oldest, so
// tracing an unbounded request stream costs bounded memory
// (threads x buffer_capacity x sizeof(slot)).
//
// Retention is two-tier:
//   * head sampling — every Nth trace id (id % sample_every == 0) is
//     exported; ids are minted sequentially from 1 on the ingest path,
//     so the sampled set is deterministic for a given corpus + seed at
//     any worker-thread count;
//   * tail keep — requests that end badly (DeadlineExceeded,
//     ResourceExhausted/shed, degraded answer, fault-injected,
//     Unavailable) are always retained: their ring entries are copied
//     into a small bounded store at terminal-event time, before the
//     ring can overwrite them. The export set is the union of both.
//
// Export formats:
//   * ToChromeTraceJson(): Chrome trace-event JSON ("X" complete spans,
//     "i" instants, plus one "request" summary event per trace acting
//     as the request log) — loadable in chrome://tracing or Perfetto.
//   * ToTestFormat(): a deterministic byte-stable dump with timestamps
//     replaced by per-trace ordering ranks; used by tests to prove the
//     recorded shape is identical at 1 and 8 worker threads.
//
// Thread-safety: writers are wait-free on their own ring (one atomic
// head bump + relaxed field stores guarded by a per-slot seqlock);
// readers (export, statusz) scan all rings concurrently and discard
// slots whose sequence changed mid-read. Every slot field is a relaxed
// std::atomic, so concurrent write-during-export is TSan-clean by
// construction. Configure()/Reset() retire old rings to a graveyard
// (never freed) so a racing writer can never touch freed memory.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trajkit::obs {

/// Process-unique request identifier; 0 means "not traced".
using TraceId = uint64_t;

/// Where in the request lifecycle an event happened. The numeric order
/// is the canonical within-trace ordering used by the deterministic
/// test format, so values are part of the dump format — append only.
enum class TracePhase : uint8_t {
  kSession = 0,   // segment closed by the SessionManager
  kSubmit = 1,    // request entered BatchPredictor::Submit
  kQueue = 2,     // time spent queued (span: enqueue -> dispatch)
  kBatch = 3,     // batch processing (span: dispatch -> answered)
  kPredict = 4,   // model inference inside the batch (span)
  kFault = 5,     // injected fault touched this request (instant)
  kDegraded = 6,  // answer served from a degradation rung (instant)
  kRetry = 7,     // caller resubmitted after a retryable error (instant)
  kTerminal = 8,  // final outcome: done/shed/deadline_exceeded/... (instant)
};

/// Span (has duration) vs instant (point in time).
enum class TraceEventKind : uint8_t { kSpan = 0, kInstant = 1 };

/// One decoded flight-recorder entry. `name` always points at a string
/// literal (writers only pass static strings), so decoded events are
/// trivially copyable and never dangle.
struct TraceEvent {
  TraceId trace_id = 0;
  const char* name = "";
  TraceEventKind kind = TraceEventKind::kInstant;
  TracePhase phase = TracePhase::kTerminal;
  uint64_t start_ns = 0;  // relative to the tracer epoch
  uint64_t end_ns = 0;    // == start_ns for instants
  uint64_t arg = 0;       // small payload (batch size, retry budget, ...)
  int thread_index = 0;   // which ring recorded it (export display only)
};

/// Summary of one tail-kept trace, for the statusz page.
struct RetainedTraceInfo {
  TraceId id = 0;
  size_t num_events = 0;
  const char* outcome = "in_flight";  // terminal event name, if recorded
  bool fault = false;
  bool degraded = false;
};

struct RequestTracerOptions {
  bool enabled = false;
  /// Head sampling: export traces whose id % sample_every == 0
  /// (1 = every trace). Tail-kept traces are exported regardless.
  uint64_t sample_every = 1;
  /// Per-thread ring capacity in events (power of two not required).
  size_t buffer_capacity = 8192;
  /// Max tail-kept traces retained; oldest evicted first.
  size_t retained_capacity = 256;
};

/// The process-wide flight recorder. All serving-stack hooks go through
/// RequestTracer::Global(); when tracing is disabled (the default) every
/// hook is a single relaxed bool load, and Mint() returns 0 so no
/// downstream code records anything — disabled runs are bit-identical
/// to an untraced build.
class RequestTracer {
 public:
  static RequestTracer& Global();

  RequestTracer();
  ~RequestTracer();  // out of line: Ring is incomplete here
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// (Re)configures the tracer: clears retained traces, retires all
  /// rings, restarts ids from 1, and re-arms the epoch. Not safe to
  /// call concurrently with writers still inside a hook; call it from
  /// the driver thread before serving starts (the CLI/bench do).
  void Configure(const RequestTracerOptions& options);

  /// Configure() back to the disabled default state.
  void Reset();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  const RequestTracerOptions& options() const { return options_; }

  /// Mints the next sequential TraceId (1, 2, 3, ...) or returns 0 when
  /// tracing is disabled. Call only on the deterministic ingest path —
  /// ids double as the head-sampling key, so minting order must not
  /// depend on worker-thread interleaving.
  TraceId Mint();

  /// True when head sampling exports this id. id 0 is never sampled.
  bool Sampled(TraceId id) const;

  /// Nanoseconds since the tracer epoch (Configure time).
  uint64_t NowNs() const;
  uint64_t ToNs(std::chrono::steady_clock::time_point tp) const;

  /// Records a completed span [start_ns, end_ns] for `id`. `name` must
  /// be a string literal. No-op when id == 0 or tracing is disabled.
  void RecordSpan(TraceId id, const char* name, TracePhase phase,
                  uint64_t start_ns, uint64_t end_ns, uint64_t arg = 0);

  /// Records a point event at `at_ns` for `id` (same literal contract).
  void RecordInstant(TraceId id, const char* name, TracePhase phase,
                     uint64_t at_ns, uint64_t arg = 0);

  /// Records a process-scoped instant (trace id 0): model hot-swaps and
  /// other global landmarks. Exported to Chrome JSON, excluded from the
  /// deterministic test format.
  void RecordGlobalInstant(const char* name, uint64_t arg = 0);

  /// Tail-keep override: copies every ring entry for `id` into the
  /// bounded retained store (deduplicated, oldest trace evicted beyond
  /// retained_capacity). Call at terminal-event time, after the last
  /// RecordInstant for the trace.
  void Retain(TraceId id);

  /// True when `id` will appear in the export set (head-sampled or
  /// already tail-kept). Used to attach histogram exemplars only for
  /// traces that a dump can actually resolve.
  bool Exported(TraceId id) const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto loadable).
  std::string ToChromeTraceJson() const;

  /// Deterministic byte-stable dump: traces sorted by id, events sorted
  /// by (phase, name, kind), timestamps replaced by ordering ranks.
  std::string ToTestFormat() const;

  /// Tail-kept traces, oldest first (statusz shows the last K).
  std::vector<RetainedTraceInfo> RetainedTraces() const;

  /// All currently decodable events (rings + retained), deduplicated.
  /// Exposed for tests and the statusz page.
  std::vector<TraceEvent> SnapshotEvents() const;

 private:
  class Ring;

  Ring* ThisThreadRing();
  void CollectRingEvents(std::vector<TraceEvent>* out) const;
  /// Rings + retained store, deduplicated, restricted to the export set
  /// (head-sampled or tail-kept; trace id 0 always).
  std::vector<TraceEvent> ExportedEvents() const;

  std::atomic<bool> enabled_{false};
  RequestTracerOptions options_;
  std::atomic<uint64_t> next_id_{0};
  std::chrono::steady_clock::time_point epoch_;
  /// Bumped by Configure()/Reset(); thread-local ring pointers carry the
  /// generation they were created under and re-acquire on mismatch.
  std::atomic<uint64_t> generation_{1};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;      // live, current generation
  std::vector<std::unique_ptr<Ring>> graveyard_;  // retired, never freed
  /// Tail-kept traces in retention order (FIFO eviction).
  std::deque<std::pair<TraceId, std::vector<TraceEvent>>> retained_;
};

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_REQUEST_TRACE_H_
