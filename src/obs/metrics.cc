#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace trajkit::obs {

namespace {

/// Portable atomic double accumulation (fetch_add on atomic<double> is
/// C++20 but not universally lowered well; the CAS loop is equivalent).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Deterministic double rendering for exports: %.12g keeps quantiles and
/// sums readable while staying byte-stable for golden comparisons.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes
/// '_' so "serve.sessions.active" exports as serve_sessions_active.
std::string SanitizePrometheusName(std::string_view prefix,
                                   std::string_view name) {
  std::string out(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

HistogramOptions HistogramOptions::Exponential(double first, double factor,
                                               int count) {
  HistogramOptions options;
  double bound = first;
  for (int i = 0; i < count; ++i) {
    options.bucket_bounds.push_back(bound);
    bound *= factor;
  }
  return options;
}

HistogramOptions HistogramOptions::LatencySeconds() {
  HistogramOptions options;
  for (int decade = -6; decade < 1; ++decade) {
    const double base = std::pow(10.0, decade);
    options.bucket_bounds.push_back(base);
    options.bucket_bounds.push_back(base * 2.5);
    options.bucket_bounds.push_back(base * 5.0);
  }
  options.bucket_bounds.push_back(10.0);
  return options;
}

HistogramOptions HistogramOptions::DurationSeconds() {
  HistogramOptions options;
  for (int decade = -4; decade < 2; ++decade) {
    const double base = std::pow(10.0, decade);
    options.bucket_bounds.push_back(base);
    options.bucket_bounds.push_back(base * 2.5);
    options.bucket_bounds.push_back(base * 5.0);
  }
  options.bucket_bounds.push_back(100.0);
  return options;
}

Histogram::Histogram(HistogramOptions options)
    : bounds_(std::move(options.bucket_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplar_values_ = std::make_unique<std::atomic<double>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i] = 0;
    exemplar_ids_[i] = 0;
    exemplar_values_[i] = 0.0;
  }
}

void Histogram::Observe(double value, uint64_t exemplar_trace_id) {
  // Prometheus `le` semantics: a value equal to a bound belongs to that
  // bound's bucket, hence lower_bound (first bound >= value).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplar_values_[bucket].store(value, std::memory_order_relaxed);
    exemplar_ids_[bucket].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  // Derive the total from the bucket reads themselves so a concurrent
  // Observe can never make quantile ranks exceed the bucket mass.
  snap.exemplar_ids.resize(bounds_.size() + 1);
  snap.exemplar_values.resize(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
    snap.exemplar_ids[i] = exemplar_ids_[i].load(std::memory_order_relaxed);
    snap.exemplar_values[i] =
        exemplar_values_[i].load(std::memory_order_relaxed);
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t previous = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    // Bucket edges clamped to the observed range: small samples and the
    // overflow bucket then report real values instead of ±Inf bounds.
    const double lower =
        std::max(b == 0 ? min : bounds[b - 1], min);
    const double upper =
        std::min(b < bounds.size() ? bounds[b] : max, max);
    if (upper <= lower) return lower;
    const double fraction =
        (target - static_cast<double>(previous)) /
        static_cast<double>(buckets[b]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return max;
}

size_t HistogramSnapshot::QuantileBucketIndex(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  size_t last_nonempty = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    last_nonempty = b;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) return b;
  }
  return last_nonempty;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::SetInfo(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  info_[std::string(name)] = std::string(value);
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::InfoValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = info_.find(name);
  return it == info_.end() ? std::string() : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(out, name);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), ": %llu",
                  static_cast<unsigned long long>(counter->value()));
    out += buffer;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(out, name);
    out += ": " + FormatDouble(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(out, name);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), ": {\"count\": %llu",
                  static_cast<unsigned long long>(snap.count));
    out += buffer;
    out += ", \"sum\": " + FormatDouble(snap.sum);
    out += ", \"min\": " + FormatDouble(snap.min);
    out += ", \"max\": " + FormatDouble(snap.max);
    out += ", \"mean\": " +
           FormatDouble(snap.count == 0
                            ? 0.0
                            : snap.sum / static_cast<double>(snap.count));
    out += ", \"p50\": " + FormatDouble(snap.Quantile(0.50));
    out += ", \"p90\": " + FormatDouble(snap.Quantile(0.90));
    out += ", \"p99\": " + FormatDouble(snap.Quantile(0.99));
    out += ", \"buckets\": [";
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": ";
      if (b < snap.bounds.size()) {
        out += FormatDouble(snap.bounds[b]);
      } else {
        out += "\"+Inf\"";
      }
      std::snprintf(buffer, sizeof(buffer), ", \"count\": %llu",
                    static_cast<unsigned long long>(snap.buckets[b]));
      out += buffer;
      // Exemplar fields appear only when an exemplar was recorded, so
      // exemplar-free registries export byte-identically to before.
      if (b < snap.exemplar_ids.size() && snap.exemplar_ids[b] != 0) {
        std::snprintf(buffer, sizeof(buffer),
                      ", \"exemplar_trace_id\": \"%llu\"",
                      static_cast<unsigned long long>(snap.exemplar_ids[b]));
        out += buffer;
        out += ", \"exemplar_value\": " +
               FormatDouble(snap.exemplar_values[b]);
      }
      out += "}";
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"info\": {";
  first = true;
  for (const auto& [name, value] : info_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(out, name);
    out += ": ";
    AppendJsonString(out, value);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheusText(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buffer[64];
  for (const auto& [name, counter] : counters_) {
    const std::string metric = SanitizePrometheusName(prefix, name);
    out += "# HELP " + metric + " trajkit metric " + name + "\n";
    out += "# TYPE " + metric + " counter\n";
    std::snprintf(buffer, sizeof(buffer), " %llu\n",
                  static_cast<unsigned long long>(counter->value()));
    out += metric + buffer;
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = SanitizePrometheusName(prefix, name);
    out += "# HELP " + metric + " trajkit metric " + name + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    const std::string metric = SanitizePrometheusName(prefix, name);
    out += "# HELP " + metric + " trajkit metric " + name + "\n";
    out += "# TYPE " + metric + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      cumulative += snap.buckets[b];
      out += metric + "_bucket{le=\"";
      out += b < snap.bounds.size() ? FormatDouble(snap.bounds[b]) : "+Inf";
      std::snprintf(buffer, sizeof(buffer), "\"} %llu",
                    static_cast<unsigned long long>(cumulative));
      out += buffer;
      // OpenMetrics-style exemplar: `# {trace_id="N"} value`, emitted
      // only when the bucket has one (keeps exemplar-free output
      // byte-identical to the pre-exemplar format).
      if (b < snap.exemplar_ids.size() && snap.exemplar_ids[b] != 0) {
        std::snprintf(buffer, sizeof(buffer), " # {trace_id=\"%llu\"} ",
                      static_cast<unsigned long long>(snap.exemplar_ids[b]));
        out += buffer;
        out += FormatDouble(snap.exemplar_values[b]);
      }
      out += "\n";
    }
    out += metric + "_sum " + FormatDouble(snap.sum) + "\n";
    std::snprintf(buffer, sizeof(buffer), "_count %llu\n",
                  static_cast<unsigned long long>(snap.count));
    out += metric + buffer;
  }
  for (const auto& [name, value] : info_) {
    const std::string metric = SanitizePrometheusName(prefix, name);
    out += "# HELP " + metric + " trajkit metric " + name + "\n";
    out += "# TYPE " + metric + " gauge\n";
    std::string escaped;
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out += metric + "{value=\"" + escaped + "\"} 1\n";
  }
  return out;
}

CounterSet::CounterSet(MetricsRegistry& registry, std::string_view base,
                       const std::vector<std::string_view>& reasons) {
  counters_.reserve(reasons.size());
  for (const std::string_view reason : reasons) {
    std::string name = std::string(base) + "." + std::string(reason);
    Counter& counter = registry.GetCounter(name);
    counters_.emplace_back(std::string(reason), &counter);
  }
}

Counter& CounterSet::Of(std::string_view reason) {
  for (auto& [name, counter] : counters_) {
    if (name == reason) return *counter;
  }
  // The reason set is fixed at construction; asking for another one is a
  // programmer error (this module is below common/check.h, hence abort).
  std::fprintf(stderr, "CounterSet: unknown reason '%.*s'\n",
               static_cast<int>(reason.size()), reason.data());
  std::abort();
}

uint64_t CounterSet::Total() const {
  uint64_t total = 0;
  for (const auto& [name, counter] : counters_) total += counter->value();
  return total;
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "metrics: cannot open '%s'\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), out);
  const bool ok = std::fclose(out) == 0 && written == content.size();
  if (!ok) std::fprintf(stderr, "metrics: short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace trajkit::obs
