#include "obs/http_export.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/request_trace.h"

namespace trajkit::obs {
namespace {

/// Writes the whole buffer, retrying on EINTR; best-effort (a scraper
/// that hangs up mid-response is its own problem). MSG_NOSIGNAL keeps a
/// mid-response hangup from raising SIGPIPE at the process.
void WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
}

void WriteResponse(int fd, const char* status, const char* content_type,
                   std::string_view body) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, content_type, body.size());
  WriteAll(fd, header);
  WriteAll(fd, body);
}

}  // namespace

HttpExportServer::~HttpExportServer() { Stop(); }

bool HttpExportServer::Start(HttpExportOptions options, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "http export server already running";
    return false;
  }
  if (options.registry == nullptr) {
    if (error != nullptr) *error = "http export server needs a registry";
    return false;
  }
  options_ = std::move(options);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExportServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Poke the self-pipe so a blocked poll() returns immediately.
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpExportServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() poked the pipe.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpExportServer::HandleConnection(int fd) {
  // Read until the end of headers (or 8 KiB — request lines we serve are
  // tiny). One request per connection, HTTP/1.0 style.
  std::string request;
  char buffer[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;
  // "GET <path> HTTP/1.x"
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || line.substr(0, sp1) != "GET") {
    WriteResponse(fd, "405 Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }
  std::string path = sp2 == std::string::npos
                         ? line.substr(sp1 + 1)
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Respond(fd, path);
}

void HttpExportServer::Respond(int fd, const std::string& path) {
  if (path == "/metrics") {
    WriteResponse(fd, "200 OK",
                  "text/plain; version=0.0.4; charset=utf-8",
                  options_.registry->ToPrometheusText(options_.prom_prefix));
    return;
  }
  if (path == "/metrics.json") {
    WriteResponse(fd, "200 OK", "application/json",
                  options_.registry->ToJson());
    return;
  }
  if (path == "/timeseries.json") {
    if (options_.timeseries == nullptr) {
      WriteResponse(fd, "404 Not Found", "text/plain",
                    "no time-series store\n");
      return;
    }
    WriteResponse(fd, "200 OK", "application/json",
                  options_.timeseries->ToJson());
    return;
  }
  if (path == "/statusz") {
    if (!options_.statusz) {
      WriteResponse(fd, "404 Not Found", "text/plain",
                    "no statusz renderer\n");
      return;
    }
    WriteResponse(fd, "200 OK", "text/plain; charset=utf-8",
                  options_.statusz());
    return;
  }
  if (path == "/healthz") {
    if (options_.slo == nullptr || options_.slo->healthy()) {
      WriteResponse(fd, "200 OK", "text/plain", "ok\n");
      return;
    }
    std::string body = "breaching:";
    for (const SloState& state : options_.slo->states()) {
      if (state.breached) body += " " + state.name;
    }
    body += '\n';
    WriteResponse(fd, "503 Service Unavailable", "text/plain", body);
    return;
  }
  if (path == "/tracez") {
    if (options_.tracer == nullptr) {
      WriteResponse(fd, "404 Not Found", "text/plain", "tracing disabled\n");
      return;
    }
    WriteResponse(fd, "200 OK", "application/json",
                  options_.tracer->ToChromeTraceJson());
    return;
  }
  if (path == "/quitquitquit") {
    if (!options_.on_quit) {
      WriteResponse(fd, "404 Not Found", "text/plain",
                    "quit handler not wired\n");
      return;
    }
    WriteResponse(fd, "200 OK", "text/plain", "bye\n");
    options_.on_quit();
    return;
  }
  WriteResponse(fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace trajkit::obs
