#include "obs/request_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <thread>
#include <tuple>
#include <utility>

// ThreadSanitizer detection: GCC defines __SANITIZE_THREAD__, clang
// answers __has_feature(thread_sanitizer).
#if defined(__SANITIZE_THREAD__)
#define TRAJKIT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TRAJKIT_TSAN 1
#endif
#endif

namespace trajkit::obs {
namespace {

// Local printf-into-std::string helper. trajkit_obs sits below
// trajkit_common in the link order, so this file cannot use
// common/strings.h StrPrintf (same reason metrics.cc hand-rolls
// snprintf).
std::string StrPrintf(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written < 0) return std::string();
  if (static_cast<size_t>(written) < sizeof(buffer)) {
    return std::string(buffer, static_cast<size_t>(written));
  }
  std::string big(static_cast<size_t>(written), '\0');
  va_start(args, format);
  std::vsnprintf(big.data(), big.size() + 1, format, args);
  va_end(args);
  return big;
}

/// Bumped whenever any tracer is constructed or reconfigured; the
/// thread-local ring cache re-validates against it, so a cached ring
/// pointer can never outlive the configuration that created it.
std::atomic<uint64_t> g_trace_epoch{1};

/// Dedup/sort key: every field except the display-only thread index.
auto EventKey(const TraceEvent& e) {
  return std::make_tuple(e.trace_id, static_cast<uint8_t>(e.phase),
                         static_cast<uint8_t>(e.kind),
                         std::string_view(e.name), e.start_ns, e.end_ns,
                         e.arg);
}

void SortAndDedup(std::vector<TraceEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return EventKey(a) < EventKey(b);
            });
  events->erase(std::unique(events->begin(), events->end(),
                            [](const TraceEvent& a, const TraceEvent& b) {
                              return EventKey(a) == EventKey(b);
                            }),
                events->end());
}

}  // namespace

/// One thread's slice of the flight recorder. Exactly one thread ever
/// writes (the owner, matched by thread id); any number of threads may
/// read concurrently. Every slot field is an atomic and each slot
/// carries a seqlock-style sequence counter (odd while a write is in
/// flight, even+unique once committed), so readers detect and discard
/// torn slots instead of locking writers out.
class RequestTracer::Ring {
 public:
  Ring(size_t capacity, int thread_index)
      : thread_index_(thread_index),
        owner_(std::this_thread::get_id()),
        slots_(capacity == 0 ? 1 : capacity) {}

  std::thread::id owner() const { return owner_; }

  /// Owner-thread only: overwrite-oldest append.
  void Push(TraceId id, const char* name, TraceEventKind kind,
            TracePhase phase, uint64_t start_ns, uint64_t end_ns,
            uint64_t arg) {
    const uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos % slots_.size()];
    slot.seq.store(2 * pos + 1, std::memory_order_release);
    slot.trace_id.store(id, std::memory_order_relaxed);
    slot.name.store(reinterpret_cast<uintptr_t>(name),
                    std::memory_order_relaxed);
    slot.meta.store(static_cast<uint32_t>(kind) |
                        (static_cast<uint32_t>(phase) << 8),
                    std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.end_ns.store(end_ns, std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    slot.seq.store(2 * (pos + 1), std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
  }

  /// Any thread: appends every committed slot, skipping slots that a
  /// concurrent Push touched mid-read (their sequence changed).
  void CollectInto(std::vector<TraceEvent>* out) const {
    for (const Slot& slot : slots_) {
      const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before == 0 || (seq_before & 1) != 0) continue;
      TraceEvent event;
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.name = reinterpret_cast<const char*>(
          slot.name.load(std::memory_order_relaxed));
      const uint32_t meta = slot.meta.load(std::memory_order_relaxed);
      event.kind = static_cast<TraceEventKind>(meta & 0xff);
      event.phase = static_cast<TracePhase>((meta >> 8) & 0xff);
      event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      event.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      event.arg = slot.arg.load(std::memory_order_relaxed);
      event.thread_index = thread_index_;
#if defined(TRAJKIT_TSAN)
      // TSan cannot model fences (-Werror=tsan). An acq_rel
      // read-don't-modify-write on the sequence word is an
      // ordering-equivalent re-check: its release half keeps the data
      // loads above from sinking past it, and TSan models RMWs fully.
      const uint64_t seq_after =
          slot.seq.fetch_add(0, std::memory_order_acq_rel);
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
#endif
      if (seq_after != seq_before) continue;
      if (event.name == nullptr) continue;
      out->push_back(event);
    }
  }

 private:
  struct Slot {
    // mutable: the TSan-mode reader re-checks via fetch_add(0) from a
    // const CollectInto.
    mutable std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uintptr_t> name{0};
    std::atomic<uint32_t> meta{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
    std::atomic<uint64_t> arg{0};
  };

  const int thread_index_;
  const std::thread::id owner_;
  std::atomic<uint64_t> head_{0};
  std::vector<Slot> slots_;
};

RequestTracer& RequestTracer::Global() {
  static RequestTracer* tracer = new RequestTracer();
  return *tracer;
}

RequestTracer::RequestTracer() : epoch_(std::chrono::steady_clock::now()) {
  g_trace_epoch.fetch_add(1, std::memory_order_relaxed);
}

// Also invalidates every thread-local cache entry pointing at this
// tracer's rings before they are freed.
RequestTracer::~RequestTracer() {
  g_trace_epoch.fetch_add(1, std::memory_order_relaxed);
}

void RequestTracer::Configure(const RequestTracerOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (options_.buffer_capacity == 0) options_.buffer_capacity = 1;
  next_id_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  // Retire the old generation's rings: any straggler writer still
  // holding a cached pointer keeps writing into valid (ignored) memory.
  for (auto& ring : rings_) graveyard_.push_back(std::move(ring));
  rings_.clear();
  retained_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  g_trace_epoch.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(options_.enabled, std::memory_order_relaxed);
}

void RequestTracer::Reset() { Configure(RequestTracerOptions{}); }

TraceId RequestTracer::Mint() {
  if (!enabled()) return 0;
  return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool RequestTracer::Sampled(TraceId id) const {
  if (!enabled() || id == 0) return false;
  const uint64_t every = options_.sample_every;
  return every <= 1 || (id % every) == 0;
}

uint64_t RequestTracer::NowNs() const {
  return ToNs(std::chrono::steady_clock::now());
}

uint64_t RequestTracer::ToNs(std::chrono::steady_clock::time_point tp) const {
  const auto delta =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
          .count();
  return delta < 0 ? 0 : static_cast<uint64_t>(delta);
}

RequestTracer::Ring* RequestTracer::ThisThreadRing() {
  struct Cache {
    uint64_t epoch = 0;
    RequestTracer* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  const uint64_t epoch = g_trace_epoch.load(std::memory_order_relaxed);
  if (cache.ring != nullptr && cache.epoch == epoch && cache.owner == this) {
    return cache.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Ring* ring = nullptr;
  const auto me = std::this_thread::get_id();
  for (const auto& candidate : rings_) {
    if (candidate->owner() == me) {
      ring = candidate.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>(
        options_.buffer_capacity, static_cast<int>(rings_.size())));
    ring = rings_.back().get();
  }
  cache = Cache{epoch, this, ring};
  return ring;
}

void RequestTracer::RecordSpan(TraceId id, const char* name, TracePhase phase,
                               uint64_t start_ns, uint64_t end_ns,
                               uint64_t arg) {
  if (!enabled() || id == 0) return;
  ThisThreadRing()->Push(id, name, TraceEventKind::kSpan, phase, start_ns,
                         end_ns, arg);
}

void RequestTracer::RecordInstant(TraceId id, const char* name,
                                  TracePhase phase, uint64_t at_ns,
                                  uint64_t arg) {
  if (!enabled() || id == 0) return;
  ThisThreadRing()->Push(id, name, TraceEventKind::kInstant, phase, at_ns,
                         at_ns, arg);
}

void RequestTracer::RecordGlobalInstant(const char* name, uint64_t arg) {
  if (!enabled()) return;
  const uint64_t now = NowNs();
  ThisThreadRing()->Push(0, name, TraceEventKind::kInstant,
                         TracePhase::kSession, now, now, arg);
}

void RequestTracer::CollectRingEvents(std::vector<TraceEvent>* out) const {
  for (const auto& ring : rings_) ring->CollectInto(out);
}

void RequestTracer::Retain(TraceId id) {
  if (!enabled() || id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  CollectRingEvents(&events);
  std::vector<TraceEvent> mine;
  for (const TraceEvent& event : events) {
    if (event.trace_id == id) mine.push_back(event);
  }
  for (auto& entry : retained_) {
    if (entry.first == id) {
      mine.insert(mine.end(), entry.second.begin(), entry.second.end());
      SortAndDedup(&mine);
      entry.second = std::move(mine);
      return;
    }
  }
  SortAndDedup(&mine);
  retained_.emplace_back(id, std::move(mine));
  while (retained_.size() > options_.retained_capacity &&
         !retained_.empty()) {
    retained_.pop_front();
  }
}

bool RequestTracer::Exported(TraceId id) const {
  if (Sampled(id)) return true;
  if (!enabled() || id == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : retained_) {
    if (entry.first == id) return true;
  }
  return false;
}

std::vector<TraceEvent> RequestTracer::SnapshotEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  CollectRingEvents(&events);
  for (const auto& entry : retained_) {
    events.insert(events.end(), entry.second.begin(), entry.second.end());
  }
  SortAndDedup(&events);
  return events;
}

std::vector<TraceEvent> RequestTracer::ExportedEvents() const {
  std::vector<TraceEvent> events = SnapshotEvents();
  std::vector<TraceEvent> kept;
  kept.reserve(events.size());
  for (const TraceEvent& event : events) {
    if (event.trace_id == 0 || Sampled(event.trace_id) ||
        Exported(event.trace_id)) {
      kept.push_back(event);
    }
  }
  return kept;
}

namespace {

/// Per-trace rollup used by both the Chrome "request log" events and
/// the statusz retained-trace summaries.
struct TraceSummary {
  uint64_t first_ns = ~uint64_t{0};
  size_t num_events = 0;
  const char* outcome = "in_flight";
  bool fault = false;
  bool degraded = false;
};

void FoldEvent(const TraceEvent& event, TraceSummary* summary) {
  summary->first_ns = std::min(summary->first_ns, event.start_ns);
  summary->num_events++;
  switch (event.phase) {
    case TracePhase::kTerminal:
      summary->outcome = event.name;
      break;
    case TracePhase::kFault:
      summary->fault = true;
      break;
    case TracePhase::kDegraded:
      summary->degraded = true;
      break;
    default:
      break;
  }
}

}  // namespace

std::string RequestTracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = ExportedEvents();
  std::vector<TraceId> retained_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : retained_) retained_ids.push_back(entry.first);
  }
  // Per-trace summaries double as the request log: one "request" event
  // per trace id, so every span's trace id resolves within the file.
  std::vector<std::pair<TraceId, TraceSummary>> summaries;
  for (const TraceEvent& event : events) {
    if (event.trace_id == 0) continue;
    if (summaries.empty() || summaries.back().first != event.trace_id) {
      summaries.emplace_back(event.trace_id, TraceSummary{});
    }
    FoldEvent(event, &summaries.back().second);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& event_json) {
    out += first ? "\n" : ",\n";
    out += event_json;
    first = false;
  };
  for (const TraceEvent& event : events) {
    const double ts_us = static_cast<double>(event.start_ns) / 1000.0;
    if (event.kind == TraceEventKind::kSpan) {
      const double dur_us =
          static_cast<double>(event.end_ns - event.start_ns) / 1000.0;
      append(StrPrintf(
          "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"trace_id\":\"%"
          PRIu64 "\",\"arg\":%" PRIu64 "}}",
          event.name, ts_us, dur_us, event.thread_index, event.trace_id,
          event.arg));
    } else if (event.trace_id == 0) {
      append(StrPrintf(
          "{\"name\":\"%s\",\"cat\":\"global\",\"ph\":\"i\",\"s\":\"g\","
          "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"arg\":%" PRIu64
          "}}",
          event.name, ts_us, event.thread_index, event.arg));
    } else {
      append(StrPrintf(
          "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"trace_id\":\"%"
          PRIu64 "\",\"arg\":%" PRIu64 "}}",
          event.name, ts_us, event.thread_index, event.trace_id, event.arg));
    }
  }
  for (const auto& [id, summary] : summaries) {
    const bool tail_kept =
        std::find(retained_ids.begin(), retained_ids.end(), id) !=
        retained_ids.end();
    const double ts_us = summary.first_ns == ~uint64_t{0}
                             ? 0.0
                             : static_cast<double>(summary.first_ns) / 1000.0;
    append(StrPrintf(
        "{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"i\",\"s\":\"g\","
        "\"ts\":%.3f,\"pid\":1,\"tid\":0,\"args\":{\"trace_id\":\"%" PRIu64
        "\",\"outcome\":\"%s\",\"tail_kept\":%s,\"fault\":%s,"
        "\"degraded\":%s,\"events\":%zu}}",
        ts_us, id, summary.outcome, tail_kept ? "true" : "false",
        summary.fault ? "true" : "false", summary.degraded ? "true" : "false",
        summary.num_events));
  }
  out += "\n]}\n";
  return out;
}

std::string RequestTracer::ToTestFormat() const {
  std::vector<TraceEvent> events = ExportedEvents();
  std::vector<TraceId> retained_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : retained_) retained_ids.push_back(entry.first);
  }
  // Group by trace id (events are already sorted by id, then phase) and
  // replace timestamps with within-trace ordering ranks: byte-identical
  // output for identical request shapes at any worker-thread count.
  std::string out = "# trajkit request trace test format v1\n";
  out += StrPrintf("sample_every %" PRIu64 "\n", options_.sample_every);
  size_t num_traces = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].trace_id == 0) continue;
    if (i == 0 || events[i].trace_id != events[i - 1].trace_id)
      num_traces++;
  }
  out += StrPrintf("traces %zu\n", num_traces);
  size_t rank = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (event.trace_id == 0) continue;  // global landmarks: wall-time only
    if (i == 0 || event.trace_id != events[i - 1].trace_id) {
      const bool tail_kept =
          std::find(retained_ids.begin(), retained_ids.end(),
                    event.trace_id) != retained_ids.end();
      out += StrPrintf("trace %" PRIu64 " tail_kept %d\n", event.trace_id,
                       tail_kept ? 1 : 0);
      rank = 0;
    }
    out += StrPrintf(
        "  %zu %s %s\n", rank++,
        event.kind == TraceEventKind::kSpan ? "span" : "instant", event.name);
  }
  out += "# end\n";
  return out;
}

std::vector<RetainedTraceInfo> RequestTracer::RetainedTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RetainedTraceInfo> infos;
  infos.reserve(retained_.size());
  for (const auto& [id, events] : retained_) {
    TraceSummary summary;
    for (const TraceEvent& event : events) FoldEvent(event, &summary);
    RetainedTraceInfo info;
    info.id = id;
    info.num_events = summary.num_events;
    info.outcome = summary.outcome;
    info.fault = summary.fault;
    info.degraded = summary.degraded;
    infos.push_back(info);
  }
  return infos;
}

}  // namespace trajkit::obs
