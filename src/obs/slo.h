#ifndef TRAJKIT_OBS_SLO_H_
#define TRAJKIT_OBS_SLO_H_

// Declarative SLOs evaluated over the TimeSeriesStore with the standard
// multi-window multi-burn-rate policy: an objective defines a *bad event
// fraction* (requests slower than a latency ceiling, or a bad/total
// counter ratio such as shed rate) and an error budget; the burn rate is
// bad_fraction / budget, and the SLO *breaches* only when the burn rate
// exceeds the threshold over BOTH a fast window (catches sudden cliffs
// quickly) and a slow window (suppresses one-tick blips). Windows are
// measured in ticks, so under replay every evaluation is a pure function
// of corpus position and the transition log is byte-identical at any
// thread/shard count.
//
// On every ok<->breach transition the engine appends a deterministic log
// line, increments `slo.<name>.breaches` (breach entry only), and drops a
// "slo_breach"/"slo_recover" landmark into the flight recorder; the
// `slo.<name>.{budget_remaining,breached}` gauges are refreshed on every
// evaluation. /healthz serves 503 while any SLO is breached.
//
// Spec grammar (--slo_spec): `;`-separated SLOs, each
//   <name>:key=value,key=value,...
// with keys
//   type=latency          metric=<histogram> ceiling_ms=<float>
//   type=ratio            bad=<counter>[+<counter>...] total=<counter>[+...]
//   budget=<fraction>     (allowed bad fraction, default 0.01)
//   fast=<ticks>          (fast window, default 8)
//   slow=<ticks>          (slow window, default 64)
//   burn=<rate>           (breach threshold, default 1.0)
// e.g. "p99:type=latency,metric=serve.batch_predictor.latency_seconds,
//       ceiling_ms=50,budget=0.05;shed:type=ratio,
//       bad=serve.shed_total.queue_full+serve.shed_total.preempted,
//       total=serve.batch_predictor.requests,budget=0.02,burn=2".

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace trajkit::obs {

struct SloSpec {
  enum class Kind { kLatency, kRatio };

  std::string name;
  Kind kind = Kind::kRatio;
  /// Latency objective: histogram metric + ceiling. The effective ceiling
  /// is the smallest bucket bound >= ceiling_seconds (bucket resolution).
  std::string metric;
  double ceiling_seconds = 0.0;
  /// Ratio objective: '+'-joined counter lists (bad events / total).
  std::vector<std::string> bad;
  std::vector<std::string> total;
  double budget = 0.01;
  size_t fast_window = 8;
  size_t slow_window = 64;
  double burn_threshold = 1.0;
};

/// Parses the --slo_spec grammar above. Returns false and names the
/// offending token in *error on malformed input; on success *specs holds
/// the parsed SLOs in declaration order.
bool ParseSloSpecs(std::string_view text, std::vector<SloSpec>* specs,
                   std::string* error);

/// Point-in-time state of one SLO.
struct SloState {
  std::string name;
  bool breached = false;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  /// Unconsumed budget fraction over the slow window: max(0, 1 -
  /// burn_slow).
  double budget_remaining = 1.0;
  uint64_t transitions = 0;
};

/// Evaluates a fixed set of SloSpecs against a TimeSeriesStore. The
/// engine tracks every metric its specs reference at construction (so
/// declare it before the first tick) and is evaluated by the tick driver
/// right after each Tick(). Thread-safe: evaluation and the accessors
/// below take an internal mutex, so an HTTP scrape thread may read
/// healthy()/states() while the driver evaluates.
class SloEngine {
 public:
  SloEngine(TimeSeriesStore* store, MetricsRegistry* registry,
            std::vector<SloSpec> specs);

  /// Evaluates every SLO over the store's current ring; `tick` labels
  /// transition-log lines (pass the tick index just sampled).
  void Evaluate(uint64_t tick);

  /// True while no SLO is breached (drives /healthz).
  bool healthy() const;
  std::vector<SloState> states() const;
  /// Deterministic transition lines, e.g.
  /// "tick=12 slo=shed ok->breach burn_fast=2.5 burn_slow=1.3".
  std::vector<std::string> transition_log() const;
  const std::vector<SloSpec>& specs() const { return specs_; }

 private:
  double BadFraction(const SloSpec& spec, size_t window) const;

  TimeSeriesStore* store_;
  MetricsRegistry* registry_;
  std::vector<SloSpec> specs_;
  mutable std::mutex mu_;
  std::vector<SloState> states_;
  std::vector<std::string> log_;
};

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_SLO_H_
