#ifndef TRAJKIT_OBS_METRICS_H_
#define TRAJKIT_OBS_METRICS_H_

// Lock-cheap process metrics: monotonic counters, gauges, and fixed-bucket
// histograms with interpolated quantiles, collected in a MetricsRegistry and
// exportable as JSON or Prometheus text. Hot paths pay one relaxed atomic
// RMW per event (plus a ~20-entry binary search for histograms); the
// registry mutex is only taken on metric *lookup*, so call sites resolve
// their handles once and keep the reference (handles are stable for the
// registry's lifetime).
//
// This module depends only on the standard library so that trajkit_common
// (the thread pool) can use it without a dependency cycle.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace trajkit::obs {

/// Monotonically increasing event count. Thread-safe; increments are
/// relaxed atomics (no ordering is implied between metrics).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, open sessions, accumulated
/// idle seconds). Thread-safe; Add is a CAS loop (portable double add).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a histogram: ascending upper bounds; an overflow bucket
/// (+Inf) is always appended implicitly.
struct HistogramOptions {
  std::vector<double> bucket_bounds;

  /// Exponential bounds: first, first*factor, ... (count values).
  static HistogramOptions Exponential(double first, double factor, int count);
  /// Latency buckets 1µs → 10s, three per decade (1 / 2.5 / 5): the default
  /// for request-scale timings.
  static HistogramOptions LatencySeconds();
  /// Coarser duration buckets 100µs → 100s for phase/fit-scale timings.
  static HistogramOptions DurationSeconds();
};

/// A point-in-time copy of a histogram's state; quantiles are computed on
/// the snapshot so p50/p90/p99 of one export line up with one bucket set.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< Upper bounds (without +Inf).
  std::vector<uint64_t> buckets; ///< Per-bucket counts, size bounds+1.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0.
  double max = 0.0;  ///< 0 when count == 0.
  /// Per-bucket exemplars: the last trace id Observe()d into the bucket
  /// (0 = none) and the value it carried. Same size as `buckets`.
  std::vector<uint64_t> exemplar_ids;
  std::vector<double> exemplar_values;

  /// Interpolated quantile, q in [0, 1]: finds the bucket holding rank
  /// q*count and interpolates linearly between its edges, clamped to the
  /// observed [min, max]. Returns 0 when the histogram is empty.
  double Quantile(double q) const;

  /// Index of the bucket Quantile(q) reads its value from — the one
  /// holding rank q*count. With it, `exemplar_ids[QuantileBucketIndex(
  /// 0.99)]` links the p99 estimate to a concrete dumpable trace.
  /// Returns 0 when the histogram is empty.
  size_t QuantileBucketIndex(double q) const;
};

/// Fixed-bucket histogram. Observe() is wait-free per bucket (relaxed
/// fetch_add) plus CAS loops for sum/min/max; concurrent snapshots are
/// consistent enough for monitoring (bucket counts may trail `count` by
/// in-flight observations, never the reverse).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  void Observe(double value) { Observe(value, 0); }

  /// Observe with an exemplar: when `exemplar_trace_id` != 0 the bucket
  /// additionally remembers (trace id, value) as its last exemplar —
  /// the per-request trace behind that latency. Callers pass an id only
  /// for traces that will appear in the trace dump (sampled or
  /// tail-kept), so exports never reference an unresolvable trace.
  void Observe(double value, uint64_t exemplar_trace_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Convenience: Quantile on a fresh snapshot.
  double Quantile(double q) const { return snapshot().Quantile(q); }
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  /// Per-bucket last exemplar, same length as buckets_. The (id, value)
  /// pair is written value-first with relaxed stores: a torn read can
  /// mismatch id and value across racing observations, which is fine
  /// for monitoring (both halves are real observations).
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<double>[]> exemplar_values_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named metrics, one namespace per kind. Get* returns a stable reference,
/// creating the metric on first use (GetHistogram's options only apply at
/// creation). Exports are ordered by name, so two exports of the same
/// state are byte-identical — tests golden-compare them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  /// Never destroyed (pool workers may still record during exit).
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(
      std::string_view name,
      const HistogramOptions& options = HistogramOptions::LatencySeconds());

  /// Sets a string-valued info metric (e.g. the active model version).
  void SetInfo(std::string_view name, std::string_view value);

  /// Read-only lookups that never create: nullptr / "" when the metric
  /// does not exist. Used by status pages that render a subset of the
  /// registry without materializing absent metrics.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;
  std::string InfoValue(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count,sum,min,max,mean,p50,p90,p99,buckets:[{le,count}...]}},
  /// "info": {...}} — keys sorted, doubles formatted with %.12g.
  std::string ToJson() const;

  /// Prometheus text exposition: names are prefixed and sanitized
  /// ([^a-zA-Z0-9_:] -> '_'), every family gets a `# HELP`/`# TYPE`
  /// pair, histograms use cumulative `_bucket{le=...}` series, info
  /// metrics become `<name>{value="..."} 1` gauges.
  std::string ToPrometheusText(std::string_view prefix = "trajkit_") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> info_;
};

/// A family of counters sharing one base name, keyed by a small fixed set
/// of reasons: "<base>.<reason>". Handles are resolved once at
/// construction (same cost model as a plain Counter — the registry mutex
/// is never touched afterwards), and Total() folds the family for "did
/// anything happen" checks. Used for per-reason outcome counting such as
/// serve.shed_total.{queue_full,preempted}.
class CounterSet {
 public:
  CounterSet(MetricsRegistry& registry, std::string_view base,
             const std::vector<std::string_view>& reasons);

  /// The counter of `reason`. Precondition: `reason` was in the
  /// constructor list (unknown reasons abort — the set is fixed).
  Counter& Of(std::string_view reason);

  /// Sum over all reasons at this instant (relaxed loads).
  uint64_t Total() const;

 private:
  std::vector<std::pair<std::string, Counter*>> counters_;
};

/// Writes `content` to `path`, returning false (with a stderr note) on
/// failure — mirrors bench::TimingJson's contract without a Status dep.
bool WriteTextFile(const std::string& path, std::string_view content);

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_METRICS_H_
