#ifndef TRAJKIT_OBS_HTTP_EXPORT_H_
#define TRAJKIT_OBS_HTTP_EXPORT_H_

// A deliberately tiny pull-based export surface: one background thread
// running a blocking accept loop over an HTTP/1.0 listener bound to
// 127.0.0.1, answering one request per connection. No third-party deps,
// no keep-alive, no TLS — the point is that a Prometheus scraper, a curl
// in a CI leg, or an operator's browser can watch a run *while it runs*.
//
// Endpoints:
//   /metrics          Prometheus text exposition (byte-identical to the
//                     --metrics_prom file for the same registry state).
//   /metrics.json     MetricsRegistry::ToJson().
//   /timeseries.json  TimeSeriesStore::ToJson() (404 without a store).
//   /statusz          injected renderer (the serve statusz page).
//   /healthz          200 "ok" / 503 "breaching: ..." from SLO state.
//   /tracez           flight-recorder Chrome trace JSON (404 untraced).
//   /quitquitquit     invokes on_quit (404 when not wired) — lets a CI
//                     leg end a lingering serve-replay without signals.
//
// The server deliberately keeps its own request counting in a plain
// atomic instead of the MetricsRegistry: a scrape must not mutate the
// registry it is exporting, or /metrics could never byte-match a file
// dump taken a moment earlier.
//
// Shutdown: Stop() pokes a self-pipe the accept loop polls alongside the
// listener, then joins the thread — clean and test-joinable, never
// relying on close() waking accept().

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace trajkit::obs {

class RequestTracer;

struct HttpExportOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back from port() — tests and --http_port=0 rely on this).
  int port = 0;
  /// Required: the registry /metrics and /metrics.json export.
  const MetricsRegistry* registry = nullptr;
  /// Prefix handed to ToPrometheusText — must match the --metrics_prom
  /// writer for the byte-identity contract.
  std::string prom_prefix = "trajkit_";
  const TimeSeriesStore* timeseries = nullptr;  ///< /timeseries.json
  const SloEngine* slo = nullptr;               ///< /healthz state
  const RequestTracer* tracer = nullptr;        ///< /tracez
  /// Renders the /statusz body (text/plain). Called on the server
  /// thread, so it must be safe against concurrent metric writers (the
  /// serve statusz renderer is).
  std::function<std::string()> statusz;
  /// Invoked (on the server thread, after the response is written) when
  /// /quitquitquit is hit. Must not call Stop() — signal the owner.
  std::function<void()> on_quit;
};

class HttpExportServer {
 public:
  HttpExportServer() = default;
  ~HttpExportServer();
  HttpExportServer(const HttpExportServer&) = delete;
  HttpExportServer& operator=(const HttpExportServer&) = delete;

  /// Binds, listens, and starts the accept thread. False (with *error
  /// set) when the socket setup fails or the server is already running.
  bool Start(HttpExportOptions options, std::string* error);

  /// Stops the accept loop and joins the thread; idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the ephemeral pick).
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Routes one request path to (status line, content type, body).
  void Respond(int fd, const std::string& path);

  HttpExportOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_HTTP_EXPORT_H_
