#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace trajkit::obs {
namespace {

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDoubleArray(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(values[i]);
  }
  out += ']';
}

void AppendU64Array(std::string& out, const std::vector<uint64_t>& values) {
  char buffer[32];
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(values[i]));
    out += buffer;
  }
  out += ']';
}

/// Reset-aware increase over consecutive cumulative samples: a decrease
/// means the source restarted from zero, so the post-reset value is the
/// increment (everything accumulated before the reset inside the same
/// interval is unobservable — the standard Prometheus `increase()`
/// semantics).
double IncreaseOverSamples(const std::deque<double>& samples, size_t first,
                           size_t last) {
  double total = 0.0;
  for (size_t i = first + 1; i <= last; ++i) {
    const double step = samples[i] - samples[i - 1];
    total += step >= 0 ? step : samples[i];
  }
  return total;
}

}  // namespace

double QuantileFromBucketDeltas(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& deltas,
                                double q) {
  uint64_t total = 0;
  for (const uint64_t d : deltas) total += d;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < deltas.size(); ++b) {
    if (deltas[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += deltas[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = b < bounds.size() ? bounds[b] : bounds.back();
    if (upper <= lower) return upper;
    const double inside = (rank - static_cast<double>(before)) /
                          static_cast<double>(deltas[b]);
    return lower + (upper - lower) * std::clamp(inside, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

TimeSeriesStore::TimeSeriesStore(const MetricsRegistry& registry,
                                 TimeSeriesOptions options)
    : registry_(registry),
      options_{std::max<size_t>(options.capacity, 2)} {}

void TimeSeriesStore::Track(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it != series_.end()) return;
  Series series;
  series.kind = kind;
  // Backfill zeros for ticks that happened before tracking started, so
  // every ring stays in lockstep with the tick ring (index i of any
  // series was sampled at ticks_[i]).
  if (kind == Kind::kHistogram) {
    series.hist.resize(ticks_.size());
  } else {
    series.samples.resize(ticks_.size(), 0.0);
  }
  series_.emplace(std::string(name), std::move(series));
}

void TimeSeriesStore::TrackCounter(std::string_view name) {
  Track(name, Kind::kCounter);
}
void TimeSeriesStore::TrackGauge(std::string_view name) {
  Track(name, Kind::kGauge);
}
void TimeSeriesStore::TrackHistogram(std::string_view name) {
  Track(name, Kind::kHistogram);
}

void TimeSeriesStore::Tick(double timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  ticks_.push_back(timestamp);
  if (ticks_.size() > options_.capacity) ticks_.pop_front();
  for (auto& [name, series] : series_) {
    switch (series.kind) {
      case Kind::kCounter: {
        if (series.counter == nullptr) {
          series.counter = registry_.FindCounter(name);
        }
        const double v =
            series.counter != nullptr
                ? static_cast<double>(series.counter->value())
                : 0.0;
        series.samples.push_back(v);
        if (series.samples.size() > options_.capacity) {
          series.samples.pop_front();
        }
        break;
      }
      case Kind::kGauge: {
        if (series.gauge == nullptr) series.gauge = registry_.FindGauge(name);
        series.samples.push_back(
            series.gauge != nullptr ? series.gauge->value() : 0.0);
        if (series.samples.size() > options_.capacity) {
          series.samples.pop_front();
        }
        break;
      }
      case Kind::kHistogram: {
        if (series.histogram == nullptr) {
          series.histogram = registry_.FindHistogram(name);
        }
        HistSample sample;
        if (series.histogram != nullptr) {
          const HistogramSnapshot snapshot = series.histogram->snapshot();
          if (series.bounds.empty()) series.bounds = snapshot.bounds;
          sample.buckets = snapshot.buckets;
          sample.count = snapshot.count;
          sample.sum = snapshot.sum;
        }
        series.hist.push_back(std::move(sample));
        if (series.hist.size() > options_.capacity) series.hist.pop_front();
        break;
      }
    }
  }
}

size_t TimeSeriesStore::tick_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_.size();
}

size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::vector<std::pair<std::string, std::string>>
TimeSeriesStore::SeriesKinds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    const char* kind = series.kind == Kind::kCounter  ? "counter"
                       : series.kind == Kind::kGauge ? "gauge"
                                                     : "histogram";
    out.emplace_back(name, kind);
  }
  return out;
}

const TimeSeriesStore::Series* TimeSeriesStore::FindSeries(
    std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

bool TimeSeriesStore::WindowRange(const Series& series, size_t window,
                                  size_t* first, size_t* last) const {
  const size_t size = series.kind == Kind::kHistogram ? series.hist.size()
                                                      : series.samples.size();
  if (size < 2) return false;
  *last = size - 1;
  if (window == 0 || window >= size) {
    *first = 0;
  } else {
    *first = size - 1 - window;
  }
  return true;
}

double TimeSeriesStore::DeltaLocked(const Series& series, size_t first,
                                    size_t last) const {
  switch (series.kind) {
    case Kind::kCounter:
      return IncreaseOverSamples(series.samples, first, last);
    case Kind::kGauge:
      return series.samples[last] - series.samples[first];
    case Kind::kHistogram: {
      double total = 0.0;
      for (size_t i = first + 1; i <= last; ++i) {
        const double step = static_cast<double>(series.hist[i].count) -
                            static_cast<double>(series.hist[i - 1].count);
        total += step >= 0 ? step : static_cast<double>(series.hist[i].count);
      }
      return total;
    }
  }
  return 0.0;
}

double TimeSeriesStore::Delta(std::string_view name, size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = FindSeries(name);
  if (series == nullptr) return 0.0;
  size_t first = 0, last = 0;
  if (!WindowRange(*series, window, &first, &last)) return 0.0;
  return DeltaLocked(*series, first, last);
}

double TimeSeriesStore::Rate(std::string_view name, size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = FindSeries(name);
  if (series == nullptr) return 0.0;
  size_t first = 0, last = 0;
  if (!WindowRange(*series, window, &first, &last)) return 0.0;
  // Rings advance in lockstep (every series is sampled on every tick and
  // late-tracked series are zero-backfilled), so sample indices address
  // the tick ring directly.
  const double span = ticks_[last] - ticks_[first];
  if (span <= 0) return 0.0;
  return DeltaLocked(*series, first, last) / span;
}

double TimeSeriesStore::WindowedQuantile(std::string_view name, double q,
                                         size_t window) const {
  WindowedHistogram wh;
  if (!WindowedHistogramDeltas(name, window, &wh)) return 0.0;
  return QuantileFromBucketDeltas(wh.bounds, wh.deltas, q);
}

bool TimeSeriesStore::WindowedHistogramDeltas(std::string_view name,
                                              size_t window,
                                              WindowedHistogram* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = FindSeries(name);
  if (series == nullptr || series->kind != Kind::kHistogram) return false;
  size_t first = 0, last = 0;
  if (!WindowRange(*series, window, &first, &last)) return false;
  out->bounds = series->bounds;
  out->deltas.assign(series->bounds.size() + 1, 0);
  out->count = 0;
  // Accumulate per-bucket increments tick by tick so a counter reset
  // inside the window only discards the unobservable pre-reset part.
  for (size_t i = first + 1; i <= last; ++i) {
    const HistSample& prev = series->hist[i - 1];
    const HistSample& cur = series->hist[i];
    const size_t buckets = std::min(cur.buckets.size(), out->deltas.size());
    const bool reset = cur.count < prev.count ||
                       cur.buckets.size() != prev.buckets.size();
    for (size_t b = 0; b < buckets; ++b) {
      const uint64_t before = reset ? 0 : prev.buckets[b];
      if (cur.buckets[b] >= before) out->deltas[b] += cur.buckets[b] - before;
    }
  }
  for (const uint64_t d : out->deltas) out->count += d;
  return true;
}

std::vector<double> TimeSeriesStore::RecentSamples(std::string_view name,
                                                   size_t last) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = FindSeries(name);
  if (series == nullptr) return {};
  std::vector<double> out;
  if (series->kind == Kind::kHistogram) {
    for (const HistSample& s : series->hist) {
      out.push_back(static_cast<double>(s.count));
    }
  } else {
    out.assign(series->samples.begin(), series->samples.end());
  }
  if (last > 0 && out.size() > last) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last));
  }
  return out;
}

std::string TimeSeriesStore::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buffer[64];
  out += "{\"capacity\": ";
  std::snprintf(buffer, sizeof(buffer), "%zu", options_.capacity);
  out += buffer;
  out += ", \"ticks\": ";
  AppendDoubleArray(out, {ticks_.begin(), ticks_.end()});
  out += ", \"series\": {";
  bool first_series = true;
  for (const auto& [name, series] : series_) {
    if (!first_series) out += ", ";
    first_series = false;
    AppendJsonString(out, name);
    out += ": {\"kind\": ";
    switch (series.kind) {
      case Kind::kCounter: {
        out += "\"counter\", \"samples\": ";
        AppendDoubleArray(out, {series.samples.begin(), series.samples.end()});
        break;
      }
      case Kind::kGauge: {
        out += "\"gauge\", \"samples\": ";
        AppendDoubleArray(out, {series.samples.begin(), series.samples.end()});
        break;
      }
      case Kind::kHistogram: {
        out += "\"histogram\", \"count\": ";
        std::vector<uint64_t> counts;
        std::vector<double> sums, p50, p99;
        for (const HistSample& s : series.hist) {
          counts.push_back(s.count);
          sums.push_back(s.sum);
          p50.push_back(
              QuantileFromBucketDeltas(series.bounds, s.buckets, 0.50));
          p99.push_back(
              QuantileFromBucketDeltas(series.bounds, s.buckets, 0.99));
        }
        AppendU64Array(out, counts);
        out += ", \"sum\": ";
        AppendDoubleArray(out, sums);
        out += ", \"p50\": ";
        AppendDoubleArray(out, p50);
        out += ", \"p99\": ";
        AppendDoubleArray(out, p99);
        break;
      }
    }
    out += '}';
  }
  out += "}}";
  return out;
}

bool WriteMetricsArtifacts(const MetricsArtifactOptions& options,
                           const MetricsRegistry& registry) {
  if (!options.metrics_json.empty() &&
      !WriteTextFile(options.metrics_json, registry.ToJson())) {
    return false;
  }
  if (!options.metrics_prom.empty() &&
      !WriteTextFile(options.metrics_prom,
                     registry.ToPrometheusText(options.prom_prefix))) {
    return false;
  }
  if (!options.timeseries_json.empty()) {
    if (options.timeseries == nullptr) {
      std::fprintf(stderr,
                   "metrics: --timeseries_json=%s requested but no "
                   "time-series store is active\n",
                   options.timeseries_json.c_str());
      return false;
    }
    if (!WriteTextFile(options.timeseries_json,
                       options.timeseries->ToJson())) {
      return false;
    }
  }
  return true;
}

}  // namespace trajkit::obs
