#include "obs/trace.h"

#include <vector>

namespace trajkit::obs {

namespace {

/// Per-thread span state: the joined path plus the length of the path
/// before each open span, so closing a span is a truncation.
struct SpanStack {
  std::string path;
  std::vector<size_t> lengths;
};

SpanStack& ThreadStack() {
  thread_local SpanStack stack;
  return stack;
}

}  // namespace

double ScopedTimer::Stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  histogram_->Observe(seconds);
  return seconds;
}

TraceSpan::TraceSpan(std::string_view name, MetricsRegistry& registry)
    : registry_(&registry), start_(std::chrono::steady_clock::now()) {
  SpanStack& stack = ThreadStack();
  stack.lengths.push_back(stack.path.size());
  if (!stack.path.empty()) stack.path += '/';
  stack.path += name;
  path_ = stack.path;
}

TraceSpan::~TraceSpan() {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  registry_->GetHistogram("span/" + path_, HistogramOptions::DurationSeconds())
      .Observe(seconds);
  registry_->GetCounter("span_calls/" + path_).Increment();
  SpanStack& stack = ThreadStack();
  stack.path.resize(stack.lengths.back());
  stack.lengths.pop_back();
}

std::string TraceSpan::CurrentPath() { return ThreadStack().path; }

int TraceSpan::CurrentDepth() {
  return static_cast<int>(ThreadStack().lengths.size());
}

}  // namespace trajkit::obs
