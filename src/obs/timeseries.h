#ifndef TRAJKIT_OBS_TIMESERIES_H_
#define TRAJKIT_OBS_TIMESERIES_H_

// Fixed-capacity metric history: a TimeSeriesStore samples a chosen set of
// registry metrics into per-series ring buffers on explicit Tick() calls.
// Nothing here reads a clock — the *caller* decides what a tick is, which
// is the whole determinism story: under `serve-replay` one tick fires per
// replay barrier (a pure function of corpus position, with every request
// drained), so the sampled series are byte-identical at any thread/shard
// count; a live deployment would tick from a wall-clock timer instead and
// pass wall seconds as the timestamp.
//
// Counters sample their cumulative value, gauges their current value, and
// histograms their full cumulative bucket vector (plus count/sum) so that
// windowed quantiles can be computed over *bucket deltas* between any two
// retained ticks. Windowed accessors (Rate/Delta/WindowedQuantile) are
// reset-aware: a sampled value that decreases is treated as a process
// restart, and deltas accumulate the non-negative increments only.
//
// Like the rest of obs, this depends only on the standard library.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace trajkit::obs {

struct TimeSeriesOptions {
  /// Ring capacity in ticks per series; the oldest tick is dropped once
  /// the ring is full. Clamped to >= 2 (a window needs two endpoints).
  size_t capacity = 512;
};

/// Bucket-level delta of a tracked histogram over a tick window, for
/// callers (the SLO engine) that need more than one quantile.
struct WindowedHistogram {
  std::vector<double> bounds;    ///< Upper bounds (without +Inf).
  std::vector<uint64_t> deltas;  ///< Per-bucket increments, size bounds+1.
  uint64_t count = 0;            ///< Total observations in the window.
};

/// Interpolated quantile over per-bucket increments: finds the bucket
/// holding rank q*total and interpolates between its edges (the first
/// bucket's lower edge is 0 — observations are assumed non-negative —
/// and the overflow bucket clamps to the last finite bound). Returns 0
/// when the deltas are empty. Shared by WindowedQuantile and the SLO
/// engine; exposed for tests.
double QuantileFromBucketDeltas(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& deltas,
                                double q);

/// Ring-buffered history of a chosen set of metrics. Track* registers a
/// series by name; resolution against the registry is lazy (a metric that
/// does not exist yet samples as 0 until it appears), so series can be
/// declared before the subsystem that emits them has started. Tick()
/// samples every tracked series once.
///
/// Thread-safety: all members take one internal mutex, so a driver thread
/// may Tick() while an HTTP scrape thread reads ToJson()/accessors. The
/// registry side of a sample is relaxed atomic loads (same contract as
/// any export).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const MetricsRegistry& registry,
                           TimeSeriesOptions options = {});
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  void TrackCounter(std::string_view name);
  void TrackGauge(std::string_view name);
  void TrackHistogram(std::string_view name);

  /// Samples every tracked series at `timestamp` (tick index under
  /// replay, wall seconds in live mode — the store never reads a clock).
  void Tick(double timestamp);

  size_t tick_count() const;
  size_t series_count() const;
  size_t capacity() const { return options_.capacity; }

  /// (name, kind) of every tracked series, sorted by name; kind is
  /// "counter" / "gauge" / "histogram". Statusz iterates this.
  std::vector<std::pair<std::string, std::string>> SeriesKinds() const;

  /// Increase of a counter (reset-aware) / net change of a gauge /
  /// observation count of a histogram over the last `window` tick
  /// intervals (0 = the whole retained ring). 0 when the series is
  /// unknown or fewer than two ticks are retained.
  double Delta(std::string_view name, size_t window = 0) const;

  /// Delta divided by the timestamp span of the window; 0 when the span
  /// is not positive.
  double Rate(std::string_view name, size_t window = 0) const;

  /// Interpolated quantile of a tracked histogram's observations inside
  /// the window (bucket deltas between the window's endpoint ticks,
  /// reset-aware). Returns 0 for unknown series, non-histograms, and
  /// windows with no observations.
  double WindowedQuantile(std::string_view name, double q,
                          size_t window = 0) const;

  /// Bucket-level window delta for the SLO engine. False when the series
  /// is unknown, not a histogram, or fewer than two ticks are retained.
  bool WindowedHistogramDeltas(std::string_view name, size_t window,
                               WindowedHistogram* out) const;

  /// Most recent sampled values of a series, oldest first, at most
  /// `last` entries (0 = all retained). Counters/histograms yield their
  /// cumulative count; gauges their value. Empty for unknown series.
  /// Statusz renders these as sparklines.
  std::vector<double> RecentSamples(std::string_view name,
                                    size_t last = 0) const;

  /// Byte-stable JSON: {"capacity":C,"ticks":[...],"series":{name:
  /// {"kind":...,"samples":[...]} | {"kind":"histogram","count":[...],
  /// "sum":[...],"p50":[...],"p99":[...]}}} — series sorted by name,
  /// doubles formatted with %.12g.
  std::string ToJson() const;

 private:
  // Registry counters are monotone in-process, so the reset-handling
  // paths need synthetic decreasing samples; the test peer injects them.
  friend class TimeSeriesStoreTestPeer;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct HistSample {
    std::vector<uint64_t> buckets;  // cumulative, size bounds+1
    uint64_t count = 0;
    double sum = 0.0;
  };

  struct Series {
    Kind kind = Kind::kCounter;
    // Lazily resolved handles (stable for the registry's lifetime).
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::deque<double> samples;       // counter/gauge rings
    std::deque<HistSample> hist;      // histogram ring
    std::vector<double> bounds;       // histogram bucket bounds
  };

  void Track(std::string_view name, Kind kind);
  const Series* FindSeries(std::string_view name) const;
  double DeltaLocked(const Series& series, size_t first, size_t last) const;
  /// [first, last] sample indices of a `window`-interval window ending at
  /// the newest tick; false when fewer than two ticks are retained.
  bool WindowRange(const Series& series, size_t window, size_t* first,
                   size_t* last) const;

  const MetricsRegistry& registry_;
  const TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::deque<double> ticks_;
  std::map<std::string, Series, std::less<>> series_;
};

/// One call site for every `--metrics_json` / `--metrics_prom` /
/// `--timeseries_json` artifact dump; the CLI and the bench harnesses all
/// route through here so a new artifact kind lands everywhere at once.
/// Empty paths are skipped; returns false (with a stderr note) on the
/// first write failure or when `timeseries_json` is set without a store.
struct MetricsArtifactOptions {
  std::string metrics_json;
  std::string metrics_prom;
  std::string timeseries_json;
  std::string prom_prefix = "trajkit_";
  const TimeSeriesStore* timeseries = nullptr;
};

bool WriteMetricsArtifacts(const MetricsArtifactOptions& options,
                           const MetricsRegistry& registry);

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_TIMESERIES_H_
