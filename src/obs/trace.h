#ifndef TRAJKIT_OBS_TRACE_H_
#define TRAJKIT_OBS_TRACE_H_

// RAII timing on top of the metrics registry: ScopedTimer records one
// histogram observation at scope exit; TraceSpan additionally nests — each
// thread keeps a span stack, and a span's duration lands in a histogram
// named "span/<parent>/<name>", so the pipeline's stage tree shows up as a
// deterministic family of histogram names.

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace trajkit::obs {

/// Records elapsed seconds into a histogram when the scope ends (or at an
/// explicit Stop()). Cost: two steady_clock reads + one Observe.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  /// Name-based convenience: resolves (or creates) the histogram in
  /// `registry`. Prefer the Histogram& form on hot paths.
  explicit ScopedTimer(
      std::string_view name,
      MetricsRegistry& registry = MetricsRegistry::Global(),
      const HistogramOptions& options = HistogramOptions::DurationSeconds())
      : ScopedTimer(registry.GetHistogram(name, options)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit; further Stop()s are no-ops.
  /// Returns the elapsed seconds that were recorded (0 if already stopped).
  double Stop();

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// A nestable, named timing scope. Spans on one thread form a stack; the
/// full path (outer/inner/...) names the histogram the duration is
/// recorded into, plus a "span_calls/<path>" counter. Spans are
/// thread-local: a span opened on a pool worker does not inherit the
/// submitting thread's stack.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     MetricsRegistry& registry = MetricsRegistry::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The calling thread's current span path ("a/b/c"; empty outside spans).
  static std::string CurrentPath();
  /// Nesting depth of the calling thread (0 outside spans).
  static int CurrentDepth();

  const std::string& path() const { return path_; }

 private:
  MetricsRegistry* registry_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trajkit::obs

#endif  // TRAJKIT_OBS_TRACE_H_
