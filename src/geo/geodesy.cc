#include "geo/geodesy.h"

#include <algorithm>

namespace trajkit::geo {

bool IsValid(const LatLon& p) {
  return std::isfinite(p.lat_deg) && std::isfinite(p.lon_deg) &&
         p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg <= 180.0;
}

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = DegToRad(a.lat_deg);
  const double lat2 = DegToRad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = DegToRad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  double h = sin_dlat * sin_dlat +
             std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  h = std::clamp(h, 0.0, 1.0);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double InitialBearingDeg(const LatLon& a, const LatLon& b) {
  if (a == b) return 0.0;
  const double lat1 = DegToRad(a.lat_deg);
  const double lat2 = DegToRad(b.lat_deg);
  const double dlon = DegToRad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  return NormalizeBearingDeg(RadToDeg(std::atan2(y, x)));
}

LatLon Destination(const LatLon& origin, double bearing_deg,
                   double distance_m) {
  const double delta = distance_m / kEarthRadiusMeters;
  const double theta = DegToRad(bearing_deg);
  const double lat1 = DegToRad(origin.lat_deg);
  const double lon1 = DegToRad(origin.lon_deg);
  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  double lon2 = lon1 + std::atan2(y, x);
  // Wrap longitude to [-180, 180).
  double lon2_deg = RadToDeg(lon2);
  while (lon2_deg >= 180.0) lon2_deg -= 360.0;
  while (lon2_deg < -180.0) lon2_deg += 360.0;
  return LatLon{RadToDeg(lat2), lon2_deg};
}

double NormalizeBearingDeg(double bearing_deg) {
  double b = std::fmod(bearing_deg, 360.0);
  if (b < 0.0) b += 360.0;
  return b;
}

double BearingDifferenceDeg(double a_deg, double b_deg) {
  double diff =
      std::fmod(NormalizeBearingDeg(b_deg) - NormalizeBearingDeg(a_deg),
                360.0);
  if (diff > 180.0) diff -= 360.0;
  if (diff <= -180.0) diff += 360.0;
  return diff;
}

EnuProjector::EnuProjector(const LatLon& reference)
    : reference_(reference),
      cos_ref_lat_(std::cos(DegToRad(reference.lat_deg))) {}

void EnuProjector::Forward(const LatLon& p, double* east_m,
                           double* north_m) const {
  *north_m = DegToRad(p.lat_deg - reference_.lat_deg) * kEarthRadiusMeters;
  *east_m = DegToRad(p.lon_deg - reference_.lon_deg) * kEarthRadiusMeters *
            cos_ref_lat_;
}

LatLon EnuProjector::Backward(double east_m, double north_m) const {
  const double lat =
      reference_.lat_deg + RadToDeg(north_m / kEarthRadiusMeters);
  const double lon =
      reference_.lon_deg +
      RadToDeg(east_m / (kEarthRadiusMeters * cos_ref_lat_));
  return LatLon{lat, lon};
}

void BoundingBox::Extend(const LatLon& p) {
  min_lat = std::min(min_lat, p.lat_deg);
  max_lat = std::max(max_lat, p.lat_deg);
  min_lon = std::min(min_lon, p.lon_deg);
  max_lon = std::max(max_lon, p.lon_deg);
}

bool BoundingBox::Contains(const LatLon& p) const {
  return p.lat_deg >= min_lat && p.lat_deg <= max_lat &&
         p.lon_deg >= min_lon && p.lon_deg <= max_lon;
}

}  // namespace trajkit::geo
