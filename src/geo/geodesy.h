#ifndef TRAJKIT_GEO_GEODESY_H_
#define TRAJKIT_GEO_GEODESY_H_

#include <cmath>

namespace trajkit::geo {

/// Mean Earth radius in meters (IUGG), the constant used by the paper's
/// haversine implementation.
inline constexpr double kEarthRadiusMeters = 6371000.0;

/// Degrees → radians.
constexpr double DegToRad(double deg) { return deg * (M_PI / 180.0); }

/// Radians → degrees.
constexpr double RadToDeg(double rad) { return rad * (180.0 / M_PI); }

/// A WGS-84 geographic coordinate. Latitude in [-90, 90] degrees, longitude
/// in [-180, 180] degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const LatLon& a, const LatLon& b) {
    return a.lat_deg == b.lat_deg && a.lon_deg == b.lon_deg;
  }
};

/// True iff the coordinate is inside the valid WGS-84 ranges and finite.
bool IsValid(const LatLon& p);

/// Great-circle distance between two coordinates in meters using the
/// haversine formula (the formula named in §3.2 of the paper).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Initial bearing (forward azimuth) from `a` to `b` in degrees, normalized
/// to [0, 360). Bearing from a point to itself is defined as 0.
double InitialBearingDeg(const LatLon& a, const LatLon& b);

/// Solves the direct geodesy problem on the sphere: the point reached by
/// travelling `distance_m` meters from `origin` along `bearing_deg`.
LatLon Destination(const LatLon& origin, double bearing_deg,
                   double distance_m);

/// Normalizes an angle to [0, 360).
double NormalizeBearingDeg(double bearing_deg);

/// Signed smallest difference between two bearings, in (-180, 180]. Positive
/// means `b` is clockwise of `a`.
double BearingDifferenceDeg(double a_deg, double b_deg);

/// Local tangent-plane (ENU) projection anchored at a reference coordinate;
/// adequate for city-scale trajectories. Used by the synthetic generator to
/// move in meters and convert back to latitude/longitude.
class EnuProjector {
 public:
  /// Anchors the plane at `reference`.
  explicit EnuProjector(const LatLon& reference);

  /// Geographic → local (east, north) meters.
  void Forward(const LatLon& p, double* east_m, double* north_m) const;

  /// Local (east, north) meters → geographic.
  LatLon Backward(double east_m, double north_m) const;

  const LatLon& reference() const { return reference_; }

 private:
  LatLon reference_;
  double cos_ref_lat_;
};

/// Axis-aligned geographic bounding box.
struct BoundingBox {
  double min_lat = 90.0;
  double max_lat = -90.0;
  double min_lon = 180.0;
  double max_lon = -180.0;

  /// Expands the box to include `p`.
  void Extend(const LatLon& p);

  /// True iff `p` lies inside (inclusive).
  bool Contains(const LatLon& p) const;

  /// True iff at least one point was added.
  bool IsInitialized() const { return min_lat <= max_lat; }
};

}  // namespace trajkit::geo

#endif  // TRAJKIT_GEO_GEODESY_H_
