#include "traj/noise.h"

#include <algorithm>

#include "geo/geodesy.h"

namespace trajkit::traj {

namespace {

double MedianOfWindow(std::vector<double>& scratch) {
  std::sort(scratch.begin(), scratch.end());
  return scratch[scratch.size() / 2];
}

}  // namespace

NoiseRemovalStats RemoveNoise(Segment& segment,
                              const NoiseRemovalOptions& options) {
  NoiseRemovalStats stats;
  stats.points_in = segment.points.size();
  if (segment.points.size() < 3) {
    stats.points_out = segment.points.size();
    return stats;
  }

  // Pass 1: drop speed-outlier points (GPS glitches). Each candidate is
  // checked against the last *kept* point so runs of glitches all go.
  if (options.max_speed_mps > 0.0 && segment.mode != Mode::kAirplane) {
    std::vector<TrajectoryPoint> kept;
    kept.reserve(segment.points.size());
    for (const TrajectoryPoint& p : segment.points) {
      if (kept.empty()) {
        kept.push_back(p);
        continue;
      }
      const TrajectoryPoint& prev = kept.back();
      const double dt = std::max(p.timestamp - prev.timestamp, 0.1);
      const double v = geo::HaversineMeters(prev.pos, p.pos) / dt;
      if (v <= options.max_speed_mps) {
        kept.push_back(p);
      } else {
        ++stats.outliers_removed;
      }
    }
    const double removed_fraction =
        static_cast<double>(stats.outliers_removed) /
        static_cast<double>(segment.points.size());
    if (removed_fraction <= options.max_outlier_fraction) {
      segment.points = std::move(kept);
    } else {
      stats.outliers_removed = 0;  // Pass rejected; segment left unchanged.
    }
  }

  // Pass 2: rolling median of latitude and longitude (window centered,
  // shrunk at the edges).
  if (options.median_window >= 3 && segment.points.size() >= 3) {
    const int half = options.median_window / 2;
    const int n = static_cast<int>(segment.points.size());
    std::vector<double> lat_out(static_cast<size_t>(n));
    std::vector<double> lon_out(static_cast<size_t>(n));
    std::vector<double> scratch;
    for (int i = 0; i < n; ++i) {
      const int lo = std::max(0, i - half);
      const int hi = std::min(n - 1, i + half);
      scratch.clear();
      for (int j = lo; j <= hi; ++j) {
        scratch.push_back(segment.points[static_cast<size_t>(j)].pos.lat_deg);
      }
      lat_out[static_cast<size_t>(i)] = MedianOfWindow(scratch);
      scratch.clear();
      for (int j = lo; j <= hi; ++j) {
        scratch.push_back(segment.points[static_cast<size_t>(j)].pos.lon_deg);
      }
      lon_out[static_cast<size_t>(i)] = MedianOfWindow(scratch);
    }
    for (int i = 0; i < n; ++i) {
      segment.points[static_cast<size_t>(i)].pos.lat_deg =
          lat_out[static_cast<size_t>(i)];
      segment.points[static_cast<size_t>(i)].pos.lon_deg =
          lon_out[static_cast<size_t>(i)];
    }
  }

  stats.points_out = segment.points.size();
  return stats;
}

NoiseRemovalStats RemoveNoiseFromCorpus(std::vector<Segment>& segments,
                                        const NoiseRemovalOptions& options,
                                        int min_points) {
  NoiseRemovalStats total;
  std::vector<Segment> kept;
  kept.reserve(segments.size());
  for (Segment& s : segments) {
    const NoiseRemovalStats one = RemoveNoise(s, options);
    total.points_in += one.points_in;
    total.outliers_removed += one.outliers_removed;
    if (static_cast<int>(s.points.size()) >= min_points) {
      total.points_out += s.points.size();
      kept.push_back(std::move(s));
    }
  }
  segments = std::move(kept);
  return total;
}

}  // namespace trajkit::traj
