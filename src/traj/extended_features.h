#ifndef TRAJKIT_TRAJ_EXTENDED_FEATURES_H_
#define TRAJKIT_TRAJ_EXTENDED_FEATURES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "traj/point_features.h"
#include "traj/types.h"

namespace trajkit::traj {

/// Thresholds of the Zheng et al. [29, 30] segment-level features.
struct ExtendedFeatureOptions {
  /// A point is a heading change when |Δbearing| exceeds this (degrees).
  double heading_change_threshold_deg = 19.0;
  /// A point is "stopped" below this speed (m/s).
  double stop_speed_threshold_mps = 0.6;
  /// A velocity change when |Δv|/v exceeds this ratio.
  double velocity_change_ratio = 0.7;
  PointFeatureOptions point_features;
};

/// The eight segment-level features appended by the extended extractor:
/// the heading-change rate (HCR), stop rate (SR) and velocity-change rate
/// (VCR) of Zheng et al., plus trip-level summaries (length, duration,
/// mean moving speed, stop fraction, straightness). The paper's §5 names
/// tailored features as future work; these are the canonical candidates
/// from its own references.
inline constexpr int kNumExtendedFeatures = 8;

/// Names of the extended features, index-aligned with the extractor.
const std::vector<std::string>& ExtendedFeatureNames();

/// Computes the extended feature block for one segment.
/// Returns InvalidArgument when the segment has fewer than 2 points.
class ExtendedFeatureExtractor {
 public:
  explicit ExtendedFeatureExtractor(ExtendedFeatureOptions options = {})
      : options_(options) {}

  Result<std::vector<double>> Extract(const Segment& segment) const;

  /// From precomputed point features (plus the raw points for geometry).
  std::vector<double> ExtractFromPointFeatures(
      const PointFeatures& features,
      std::span<const TrajectoryPoint> points) const;

 private:
  ExtendedFeatureOptions options_;
};

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_EXTENDED_FEATURES_H_
