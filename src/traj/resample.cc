#include "traj/resample.h"

#include <cmath>

namespace trajkit::traj {

Result<std::vector<TrajectoryPoint>> ResampleUniform(
    std::span<const TrajectoryPoint> points,
    const ResampleOptions& options) {
  if (points.size() < 2) {
    return Status::InvalidArgument("need at least 2 points to resample");
  }
  if (options.interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  std::vector<TrajectoryPoint> out;
  out.reserve(points.size());

  double grid_time = points.front().timestamp;
  out.push_back(points.front());
  size_t segment = 0;  // Interval [segment, segment + 1).

  while (true) {
    const double next_time = grid_time + options.interval_seconds;
    // Advance to the source interval containing next_time.
    while (segment + 1 < points.size() &&
           points[segment + 1].timestamp < next_time) {
      ++segment;
    }
    if (segment + 1 >= points.size()) break;

    const TrajectoryPoint& a = points[segment];
    const TrajectoryPoint& b = points[segment + 1];
    const double gap = b.timestamp - a.timestamp;
    if (options.max_gap_seconds > 0.0 && gap > options.max_gap_seconds) {
      // Do not interpolate across the gap: restart the grid at b.
      out.push_back(b);
      grid_time = b.timestamp;
      ++segment;
      if (segment + 1 >= points.size()) break;
      continue;
    }
    const double t = gap > 0.0 ? (next_time - a.timestamp) / gap : 0.0;
    TrajectoryPoint p;
    p.timestamp = next_time;
    p.pos.lat_deg = a.pos.lat_deg + t * (b.pos.lat_deg - a.pos.lat_deg);
    p.pos.lon_deg = a.pos.lon_deg + t * (b.pos.lon_deg - a.pos.lon_deg);
    // Mode of the earlier source point; a grid point landing exactly on
    // the later fix takes that fix's mode.
    p.mode = next_time >= b.timestamp ? b.mode : a.mode;
    out.push_back(p);
    grid_time = next_time;
  }
  return out;
}

}  // namespace trajkit::traj
