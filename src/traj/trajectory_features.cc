#include "traj/trajectory_features.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "stats/descriptive.h"

namespace trajkit::traj {

namespace {

constexpr std::array<std::string_view, kNumStatistics> kStatNames = {
    "min", "max", "mean", "median", "std", "p10", "p25", "p50", "p75", "p90"};

constexpr std::array<double, 5> kLocalPercentiles = {10.0, 25.0, 50.0, 75.0,
                                                     90.0};

}  // namespace

std::string_view StatisticToString(Statistic stat) {
  const int i = static_cast<int>(stat);
  TRAJKIT_CHECK_GE(i, 0);
  TRAJKIT_CHECK_LT(i, kNumStatistics);
  return kStatNames[static_cast<size_t>(i)];
}

const std::vector<std::string>& TrajectoryFeatureExtractor::FeatureNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>();
    names->reserve(kNumTrajectoryFeatures);
    for (std::string_view channel : ChannelNames()) {
      for (std::string_view stat : kStatNames) {
        names->push_back(std::string(channel) + "_" + std::string(stat));
      }
    }
    return names;
  }();
  return *kNames;
}

Result<int> TrajectoryFeatureExtractor::FeatureIndex(std::string_view name) {
  const std::vector<std::string>& names = FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("unknown trajectory feature: '" +
                          std::string(name) + "'");
}

int TrajectoryFeatureExtractor::IndexOf(int channel, Statistic stat) {
  TRAJKIT_CHECK_GE(channel, 0);
  TRAJKIT_CHECK_LT(channel, kNumFeatureChannels);
  return channel * kNumStatistics + static_cast<int>(stat);
}

Result<std::vector<double>> TrajectoryFeatureExtractor::Extract(
    const Segment& segment) const {
  if (segment.points.size() < 2) {
    return Status::InvalidArgument(
        "segment must have at least 2 points to extract features");
  }
  const PointFeatures features =
      ComputePointFeatures(segment.points, options_);
  return ExtractFromPointFeatures(features);
}

std::vector<double> TrajectoryFeatureExtractor::ExtractFromPointFeatures(
    const PointFeatures& features) const {
  std::vector<double> out;
  out.reserve(kNumTrajectoryFeatures);
  std::vector<double> sorted;  // Percentile scratch, reused across channels.
  std::array<double, kLocalPercentiles.size()> pct;
  for (int channel = 0; channel < kNumFeatureChannels; ++channel) {
    const std::span<const double> values = ChannelValues(features, channel);
    // All six order statistics (median + five local percentiles) share ONE
    // sort per channel: Median(v) is defined as Percentile(v, 50), which is
    // bit-identical to the p50 entry of the shared-sort batch below.
    stats::PercentilesInto(values, kLocalPercentiles, sorted, pct);
    // Global features.
    out.push_back(stats::Min(values));
    out.push_back(stats::Max(values));
    out.push_back(stats::Mean(values));
    out.push_back(pct[2]);  // median
    out.push_back(stats::StdDev(values));
    // Local features (p10/p25/p50/p75/p90).
    out.insert(out.end(), pct.begin(), pct.end());
  }
  TRAJKIT_CHECK_EQ(out.size(),
                   static_cast<size_t>(kNumTrajectoryFeatures));
  return out;
}

}  // namespace trajkit::traj
