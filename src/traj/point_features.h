#ifndef TRAJKIT_TRAJ_POINT_FEATURES_H_
#define TRAJKIT_TRAJ_POINT_FEATURES_H_

#include <span>
#include <string_view>
#include <vector>

#include "traj/types.h"

namespace trajkit::traj {

/// Per-point feature channels of one segment, computed in the columnar
/// ("vectorized", §3.2) style: every vector has exactly points.size()
/// entries. Following the paper, the value at index 0 — undefined because
/// each feature needs a preceding point — is copied from index 1 ("we assume
/// the speed of the first trajectory point is equal to the speed of the
/// second trajectory point").
struct PointFeatures {
  /// Δt between consecutive fixes, seconds.
  std::vector<double> duration;
  /// Haversine distance between consecutive fixes, meters.
  std::vector<double> distance;
  /// speed_i = distance_i / duration_i, m/s.
  std::vector<double> speed;
  /// accel_{i} = (speed_i - speed_{i-1}) / Δt, m/s².
  std::vector<double> acceleration;
  /// jerk_{i} = (accel_i - accel_{i-1}) / Δt, m/s³.
  std::vector<double> jerk;
  /// Initial bearing from fix i-1 to fix i, degrees in [0, 360).
  std::vector<double> bearing;
  /// bearing_rate_i = wrapped(bearing_i - bearing_{i-1}) / Δt, deg/s.
  std::vector<double> bearing_rate;
  /// rate of the bearing rate, deg/s².
  std::vector<double> bearing_rate_rate;

  size_t size() const { return speed.size(); }
};

/// Options for the point-feature kernels.
struct PointFeatureOptions {
  /// Durations below this floor (duplicate or out-of-order timestamps) are
  /// clamped to it before dividing, so speed/acceleration stay finite.
  double min_duration_seconds = 0.1;
  /// When true (default), bearing differences are wrapped to (-180, 180]
  /// before dividing by Δt; when false the raw difference is used, exactly
  /// as in the Brate formula of §3.2.
  bool wrap_bearing_difference = true;
};

/// Computes all point-feature channels for a run of fixes.
/// Precondition: points.size() >= 2 (enforced upstream by segmentation's
/// min_points filter; single-point inputs are a programmer error).
PointFeatures ComputePointFeatures(std::span<const TrajectoryPoint> points,
                                   const PointFeatureOptions& options = {});

/// The seven point-feature channels from which the paper derives its 70
/// trajectory features ("10 statistical measures ... calculated for 7 point
/// features"): distance, speed, acceleration, jerk, bearing, bearing rate,
/// and the rate of the bearing rate. (Duration is computed as scaffolding
/// but is not a classification channel.)
inline constexpr int kNumFeatureChannels = 7;

/// Stable channel names, index-aligned with ChannelValues().
std::span<const std::string_view> ChannelNames();

/// Read-only view of channel index `channel` in [0, 7). A span (not a
/// vector reference) so consumers cannot accidentally copy a channel and
/// alternative storage layouts stay possible behind the accessor.
std::span<const double> ChannelValues(const PointFeatures& features,
                                      int channel);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_POINT_FEATURES_H_
