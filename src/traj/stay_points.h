#ifndef TRAJKIT_TRAJ_STAY_POINTS_H_
#define TRAJKIT_TRAJ_STAY_POINTS_H_

#include <span>
#include <vector>

#include "geo/geodesy.h"
#include "traj/types.h"

namespace trajkit::traj {

/// Parameters of the classic stay-point detector (Li et al. / Zheng et
/// al., the GeoLife companion papers [29, 30]): a stay point is a maximal
/// run of fixes that remain within `distance_threshold_m` of the run's
/// anchor for at least `time_threshold_s`.
struct StayPointOptions {
  double distance_threshold_m = 200.0;
  double time_threshold_s = 20.0 * 60.0;
};

/// One detected stay.
struct StayPoint {
  /// Mean position of the contributing fixes.
  geo::LatLon centroid;
  double arrival_time = 0.0;
  double departure_time = 0.0;
  /// Index range [first_index, last_index] into the input sequence.
  size_t first_index = 0;
  size_t last_index = 0;

  double DurationSeconds() const { return departure_time - arrival_time; }
};

/// Runs the stay-point detector over a time-ordered fix sequence. Useful
/// both as a trip/activity splitter (stays separate trips) and as a
/// semantic signal (home/work/station discovery).
std::vector<StayPoint> DetectStayPoints(
    std::span<const TrajectoryPoint> points,
    const StayPointOptions& options = {});

/// Splits a trajectory into the movement episodes between detected stays
/// (each episode is returned as a Segment with mode = the majority mode of
/// its points; episodes shorter than `min_points` are dropped). An
/// annotation-free alternative to mode-boundary segmentation.
std::vector<Segment> SplitByStayPoints(const Trajectory& trajectory,
                                       const StayPointOptions& options = {},
                                       int min_points = 10);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_STAY_POINTS_H_
