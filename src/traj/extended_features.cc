#include "traj/extended_features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/geodesy.h"

namespace trajkit::traj {

const std::vector<std::string>& ExtendedFeatureNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          "heading_change_rate",   // Changes per km.
          "stop_rate",             // Stop points per km.
          "velocity_change_rate",  // Velocity changes per km.
          "trip_length_m",
          "trip_duration_s",
          "moving_speed_mean",     // Mean speed over non-stopped points.
          "stop_fraction",         // Fraction of points below the threshold.
          "straightness",          // Net displacement / path length.
      };
  return *kNames;
}

Result<std::vector<double>> ExtendedFeatureExtractor::Extract(
    const Segment& segment) const {
  if (segment.points.size() < 2) {
    return Status::InvalidArgument(
        "segment must have at least 2 points for extended features");
  }
  const PointFeatures features =
      ComputePointFeatures(segment.points, options_.point_features);
  return ExtractFromPointFeatures(features, segment.points);
}

std::vector<double> ExtendedFeatureExtractor::ExtractFromPointFeatures(
    const PointFeatures& features,
    std::span<const TrajectoryPoint> points) const {
  TRAJKIT_CHECK_EQ(features.size(), points.size());
  const size_t n = features.size();

  double path_length = 0.0;
  size_t heading_changes = 0;
  size_t stops = 0;
  size_t velocity_changes = 0;
  double moving_speed_sum = 0.0;
  size_t moving_points = 0;

  for (size_t i = 1; i < n; ++i) {
    path_length += features.distance[i];
    const double heading_delta = geo::BearingDifferenceDeg(
        features.bearing[i - 1], features.bearing[i]);
    if (std::fabs(heading_delta) > options_.heading_change_threshold_deg) {
      ++heading_changes;
    }
    if (features.speed[i] < options_.stop_speed_threshold_mps) {
      ++stops;
    } else {
      moving_speed_sum += features.speed[i];
      ++moving_points;
    }
    const double prev_speed = std::max(features.speed[i - 1], 1e-6);
    if (std::fabs(features.speed[i] - features.speed[i - 1]) / prev_speed >
        options_.velocity_change_ratio) {
      ++velocity_changes;
    }
  }

  const double km = std::max(path_length / 1000.0, 1e-6);
  const double duration =
      std::max(points.back().timestamp - points.front().timestamp, 1e-6);
  const double net_displacement =
      geo::HaversineMeters(points.front().pos, points.back().pos);

  std::vector<double> out;
  out.reserve(kNumExtendedFeatures);
  out.push_back(static_cast<double>(heading_changes) / km);
  out.push_back(static_cast<double>(stops) / km);
  out.push_back(static_cast<double>(velocity_changes) / km);
  out.push_back(path_length);
  out.push_back(duration);
  out.push_back(moving_points > 0
                    ? moving_speed_sum / static_cast<double>(moving_points)
                    : 0.0);
  out.push_back(static_cast<double>(stops) / static_cast<double>(n - 1));
  out.push_back(path_length > 0.0
                    ? std::min(net_displacement / path_length, 1.0)
                    : 0.0);
  TRAJKIT_CHECK_EQ(out.size(), static_cast<size_t>(kNumExtendedFeatures));
  return out;
}

}  // namespace trajkit::traj
