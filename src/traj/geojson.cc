#include "traj/geojson.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace trajkit::traj {

namespace {

void AppendCoordinates(const std::vector<TrajectoryPoint>& points,
                       int decimation, std::string& out) {
  out += '[';
  bool first = true;
  const int step = std::max(1, decimation);
  for (size_t i = 0; i < points.size();
       i += static_cast<size_t>(step)) {
    if (!first) out += ',';
    first = false;
    out += StrPrintf("[%.6f,%.6f]", points[i].pos.lon_deg,
                     points[i].pos.lat_deg);
  }
  // Always keep the final point so the line reaches its true end.
  if (!points.empty() && (points.size() - 1) % static_cast<size_t>(step)) {
    out += StrPrintf(",[%.6f,%.6f]", points.back().pos.lon_deg,
                     points.back().pos.lat_deg);
  }
  out += ']';
}

void AppendSegmentFeature(const Segment& segment,
                          const GeoJsonOptions& options, std::string& out) {
  out += R"({"type":"Feature","geometry":{"type":"LineString","coordinates":)";
  AppendCoordinates(segment.points, options.decimation, out);
  out += "},\"properties\":";
  if (options.include_properties && !segment.points.empty()) {
    out += StrPrintf(
        R"({"mode":"%s","user":%d,"day":%lld,"start":%.0f,"end":%.0f,"points":%zu})",
        std::string(ModeToString(segment.mode)).c_str(), segment.user_id,
        static_cast<long long>(segment.day),
        segment.points.front().timestamp, segment.points.back().timestamp,
        segment.points.size());
  } else {
    out += "{}";
  }
  out += '}';
}

}  // namespace

std::string SegmentsToGeoJson(const std::vector<Segment>& segments,
                              const GeoJsonOptions& options) {
  std::string out = R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  for (const Segment& segment : segments) {
    if (segment.points.empty()) continue;
    if (!first) out += ',';
    first = false;
    AppendSegmentFeature(segment, options, out);
  }
  out += "]}";
  return out;
}

std::string TrajectoryToGeoJson(const Trajectory& trajectory,
                                const GeoJsonOptions& options) {
  Segment whole;
  whole.user_id = trajectory.user_id;
  whole.points = trajectory.points;
  whole.mode = Mode::kUnknown;
  if (!trajectory.points.empty()) {
    whole.day = DayIndex(trajectory.points.front().timestamp);
  }
  std::vector<Segment> segments;
  segments.push_back(std::move(whole));
  return SegmentsToGeoJson(segments, options);
}

Status WriteSegmentsGeoJson(const std::vector<Segment>& segments,
                            const std::string& path,
                            const GeoJsonOptions& options) {
  return WriteStringToFile(path, SegmentsToGeoJson(segments, options));
}

}  // namespace trajkit::traj
