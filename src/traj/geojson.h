#ifndef TRAJKIT_TRAJ_GEOJSON_H_
#define TRAJKIT_TRAJ_GEOJSON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "traj/types.h"

namespace trajkit::traj {

/// Options of the GeoJSON exporter.
struct GeoJsonOptions {
  /// Keep every Nth point (1 = all); GeoJSON viewers choke on 10⁶ points.
  int decimation = 1;
  /// Emit timestamps/mode properties per feature.
  bool include_properties = true;
};

/// Serializes segments as a GeoJSON FeatureCollection — one LineString per
/// segment with mode / user / timing properties — directly viewable on
/// geojson.io or in QGIS. Handy for eyeballing synthetic corpora against
/// real traces.
std::string SegmentsToGeoJson(const std::vector<Segment>& segments,
                              const GeoJsonOptions& options = {});

/// Serializes one raw trajectory (single LineString feature).
std::string TrajectoryToGeoJson(const Trajectory& trajectory,
                                const GeoJsonOptions& options = {});

/// Writes GeoJSON text for the segments to a file.
Status WriteSegmentsGeoJson(const std::vector<Segment>& segments,
                            const std::string& path,
                            const GeoJsonOptions& options = {});

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_GEOJSON_H_
