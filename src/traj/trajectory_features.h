#ifndef TRAJKIT_TRAJ_TRAJECTORY_FEATURES_H_
#define TRAJKIT_TRAJ_TRAJECTORY_FEATURES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "traj/point_features.h"
#include "traj/types.h"

namespace trajkit::traj {

/// The ten per-channel statistics of §3.2: five global trajectory features
/// (min, max, mean, median, standard deviation) and five local trajectory
/// features (percentiles 10, 25, 50, 75, 90).
enum class Statistic : int {
  kMin = 0,
  kMax,
  kMean,
  kMedian,
  kStdDev,
  kP10,
  kP25,
  kP50,
  kP75,
  kP90,
};

/// Number of statistics per channel.
inline constexpr int kNumStatistics = 10;

/// 7 channels × 10 statistics = the paper's 70 trajectory features.
inline constexpr int kNumTrajectoryFeatures =
    kNumFeatureChannels * kNumStatistics;

/// Short suffix of a statistic ("min", "p90", ...).
std::string_view StatisticToString(Statistic stat);

/// Extracts the 70-dimensional trajectory-feature vector of a segment.
class TrajectoryFeatureExtractor {
 public:
  explicit TrajectoryFeatureExtractor(PointFeatureOptions options = {})
      : options_(options) {}

  /// All 70 feature names, index-aligned with Extract()'s output. Name
  /// format: "<channel>_<stat>" (e.g. "speed_p90" — the paper's F^speed_p90).
  static const std::vector<std::string>& FeatureNames();

  /// Index of a named feature, or error if unknown.
  static Result<int> FeatureIndex(std::string_view name);

  /// Feature index of (channel, statistic).
  static int IndexOf(int channel, Statistic stat);

  /// Computes the 70 features for one segment.
  /// Returns InvalidArgument when the segment has fewer than 2 points.
  Result<std::vector<double>> Extract(const Segment& segment) const;

  /// Computes features from already-computed point features.
  std::vector<double> ExtractFromPointFeatures(
      const PointFeatures& features) const;

 private:
  PointFeatureOptions options_;
};

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_TRAJECTORY_FEATURES_H_
