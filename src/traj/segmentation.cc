#include "traj/segmentation.h"

#include <array>

namespace trajkit::traj {

std::vector<Segment> SegmentTrajectory(const Trajectory& trajectory,
                                       const SegmentationOptions& options) {
  std::vector<Segment> segments;
  Segment current;
  bool has_current = false;
  double last_timestamp = 0.0;

  auto flush = [&]() {
    if (has_current &&
        static_cast<int>(current.points.size()) >= options.min_points &&
        (!options.drop_unlabeled || current.mode != Mode::kUnknown)) {
      segments.push_back(std::move(current));
    }
    current = Segment{};
    has_current = false;
  };

  for (const TrajectoryPoint& point : trajectory.points) {
    if (has_current && point.timestamp < last_timestamp) {
      continue;  // Drop out-of-order fix.
    }
    const int64_t day = DayIndex(point.timestamp);
    bool boundary = false;
    if (has_current) {
      if (options.split_on_mode && point.mode != current.mode) boundary = true;
      if (options.split_on_day && day != current.day) boundary = true;
      if (options.max_gap_seconds > 0.0 &&
          point.timestamp - last_timestamp > options.max_gap_seconds) {
        boundary = true;
      }
    }
    if (boundary) flush();
    if (!has_current) {
      current.user_id = trajectory.user_id;
      current.day = day;
      current.mode = point.mode;
      has_current = true;
    }
    current.points.push_back(point);
    last_timestamp = point.timestamp;
  }
  flush();
  return segments;
}

std::vector<Segment> SegmentCorpus(const std::vector<Trajectory>& corpus,
                                   const SegmentationOptions& options) {
  std::vector<Segment> all;
  for (const Trajectory& trajectory : corpus) {
    std::vector<Segment> segments = SegmentTrajectory(trajectory, options);
    for (Segment& s : segments) all.push_back(std::move(s));
  }
  return all;
}

std::vector<Segment> SegmentTrajectoryByWindows(
    const Trajectory& trajectory,
    const WindowSegmentationOptions& options) {
  std::vector<Segment> segments;
  if (trajectory.points.empty() || options.window_seconds <= 0.0) {
    return segments;
  }
  Segment current;
  double window_start = trajectory.points.front().timestamp;
  double last_timestamp = window_start;

  auto flush = [&]() {
    if (static_cast<int>(current.points.size()) < options.min_points) {
      current = Segment{};
      return;
    }
    // Majority vote over modes.
    std::array<size_t, kNumModes> counts{};
    for (const TrajectoryPoint& p : current.points) {
      ++counts[static_cast<size_t>(p.mode)];
    }
    size_t best = 0;
    for (size_t m = 1; m < counts.size(); ++m) {
      if (counts[m] > counts[best]) best = m;
    }
    const double minority =
        1.0 - static_cast<double>(counts[best]) /
                  static_cast<double>(current.points.size());
    const Mode majority = static_cast<Mode>(best);
    if (minority <= options.max_minority_fraction &&
        (!options.drop_unlabeled || majority != Mode::kUnknown)) {
      current.mode = majority;
      current.day = DayIndex(current.points.front().timestamp);
      segments.push_back(std::move(current));
    }
    current = Segment{};
  };

  for (const TrajectoryPoint& point : trajectory.points) {
    if (!current.points.empty() && point.timestamp < last_timestamp) {
      continue;  // Drop out-of-order fix.
    }
    if (!current.points.empty() &&
        point.timestamp - window_start >= options.window_seconds) {
      flush();
    }
    if (current.points.empty()) {
      current.user_id = trajectory.user_id;
      window_start = point.timestamp;
    }
    current.points.push_back(point);
    last_timestamp = point.timestamp;
  }
  flush();
  return segments;
}

std::vector<Segment> SegmentCorpusByWindows(
    const std::vector<Trajectory>& corpus,
    const WindowSegmentationOptions& options) {
  std::vector<Segment> all;
  for (const Trajectory& trajectory : corpus) {
    std::vector<Segment> segments =
        SegmentTrajectoryByWindows(trajectory, options);
    for (Segment& s : segments) all.push_back(std::move(s));
  }
  return all;
}

}  // namespace trajkit::traj
