#include "traj/simplify.h"

#include <cmath>

#include "geo/geodesy.h"

namespace trajkit::traj {

namespace {

// Perpendicular distance from p to the chord a→b, all in planar meters.
double PerpendicularDistance(double px, double py, double ax, double ay,
                             double bx, double by) {
  const double dx = bx - ax;
  const double dy = by - ay;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq <= 0.0) return std::hypot(px - ax, py - ay);
  // Distance to the infinite line (Douglas–Peucker convention).
  return std::fabs(dy * px - dx * py + bx * ay - by * ax) /
         std::sqrt(len_sq);
}

void Recurse(const std::vector<double>& xs, const std::vector<double>& ys,
             size_t begin, size_t end, double epsilon,
             std::vector<bool>& keep) {
  if (end <= begin + 1) return;
  double worst = -1.0;
  size_t worst_index = begin;
  for (size_t i = begin + 1; i < end; ++i) {
    const double d = PerpendicularDistance(xs[i], ys[i], xs[begin],
                                           ys[begin], xs[end], ys[end]);
    if (d > worst) {
      worst = d;
      worst_index = i;
    }
  }
  if (worst > epsilon) {
    keep[worst_index] = true;
    Recurse(xs, ys, begin, worst_index, epsilon, keep);
    Recurse(xs, ys, worst_index, end, epsilon, keep);
  }
}

}  // namespace

std::vector<TrajectoryPoint> SimplifyDouglasPeucker(
    std::span<const TrajectoryPoint> points, double epsilon_m) {
  if (points.size() <= 2 || epsilon_m <= 0.0) {
    return std::vector<TrajectoryPoint>(points.begin(), points.end());
  }
  const geo::EnuProjector projector(points.front().pos);
  std::vector<double> xs(points.size());
  std::vector<double> ys(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    projector.Forward(points[i].pos, &xs[i], &ys[i]);
  }
  std::vector<bool> keep(points.size(), false);
  keep.front() = true;
  keep.back() = true;
  Recurse(xs, ys, 0, points.size() - 1, epsilon_m, keep);

  std::vector<TrajectoryPoint> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

void SimplifySegment(Segment& segment, double epsilon_m) {
  segment.points = SimplifyDouglasPeucker(segment.points, epsilon_m);
}

}  // namespace trajkit::traj
