#ifndef TRAJKIT_TRAJ_TYPES_H_
#define TRAJKIT_TRAJ_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "geo/geodesy.h"

namespace trajkit::traj {

/// The eleven transportation modes annotated in GeoLife, plus kUnknown for
/// unlabelled points. Enumerator order is stable and used as the canonical
/// class index where no label-set mapping is applied.
enum class Mode : uint8_t {
  kUnknown = 0,
  kWalk,
  kBike,
  kBus,
  kCar,
  kTaxi,
  kSubway,
  kTrain,
  kAirplane,
  kBoat,
  kRun,
  kMotorcycle,
};

/// Number of distinct enumerators in Mode (including kUnknown).
inline constexpr int kNumModes = 12;

/// Canonical lower-case name ("walk", "bus", ...).
std::string_view ModeToString(Mode mode);

/// Parses a mode name as spelled in GeoLife labels.txt (case-insensitive;
/// accepts "motorcycle"/"motorbike" and "run"/"running" variants).
Result<Mode> ModeFromString(std::string_view name);

/// All labelled modes (everything except kUnknown), in enum order.
const std::vector<Mode>& AllLabeledModes();

/// One GPS fix: a WGS-84 position, a timestamp, and the annotated mode
/// (kUnknown when the fix falls outside every labelled interval).
struct TrajectoryPoint {
  geo::LatLon pos;
  /// Seconds since the Unix epoch (fractional seconds allowed).
  double timestamp = 0.0;
  Mode mode = Mode::kUnknown;
};

/// A raw trajectory: one user's time-ordered fixes. The paper's τ.
struct Trajectory {
  int user_id = 0;
  std::vector<TrajectoryPoint> points;
};

/// A sub-trajectory produced by segmentation: a maximal run of points from
/// one user, one (local) day, and one transportation mode. The paper's S.
struct Segment {
  int user_id = 0;
  /// Day index = floor(first timestamp / 86400).
  int64_t day = 0;
  Mode mode = Mode::kUnknown;
  std::vector<TrajectoryPoint> points;
};

/// Day index of a timestamp (UTC days since epoch).
int64_t DayIndex(double timestamp);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_TYPES_H_
