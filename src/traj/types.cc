#include "traj/types.h"

#include <cmath>

#include "common/strings.h"

namespace trajkit::traj {

std::string_view ModeToString(Mode mode) {
  switch (mode) {
    case Mode::kUnknown:
      return "unknown";
    case Mode::kWalk:
      return "walk";
    case Mode::kBike:
      return "bike";
    case Mode::kBus:
      return "bus";
    case Mode::kCar:
      return "car";
    case Mode::kTaxi:
      return "taxi";
    case Mode::kSubway:
      return "subway";
    case Mode::kTrain:
      return "train";
    case Mode::kAirplane:
      return "airplane";
    case Mode::kBoat:
      return "boat";
    case Mode::kRun:
      return "run";
    case Mode::kMotorcycle:
      return "motorcycle";
  }
  return "unknown";
}

Result<Mode> ModeFromString(std::string_view name) {
  const std::string lower = ToLowerAscii(StripWhitespace(name));
  if (lower == "walk") return Mode::kWalk;
  if (lower == "bike") return Mode::kBike;
  if (lower == "bus") return Mode::kBus;
  if (lower == "car") return Mode::kCar;
  if (lower == "taxi") return Mode::kTaxi;
  if (lower == "subway") return Mode::kSubway;
  if (lower == "train") return Mode::kTrain;
  if (lower == "airplane" || lower == "plane") return Mode::kAirplane;
  if (lower == "boat") return Mode::kBoat;
  if (lower == "run" || lower == "running") return Mode::kRun;
  if (lower == "motorcycle" || lower == "motorbike") return Mode::kMotorcycle;
  return Status::InvalidArgument("unknown transportation mode: '" +
                                 std::string(name) + "'");
}

const std::vector<Mode>& AllLabeledModes() {
  static const std::vector<Mode>* const kModes = new std::vector<Mode>{
      Mode::kWalk,     Mode::kBike,  Mode::kBus,  Mode::kCar,
      Mode::kTaxi,     Mode::kSubway, Mode::kTrain, Mode::kAirplane,
      Mode::kBoat,     Mode::kRun,   Mode::kMotorcycle};
  return *kModes;
}

int64_t DayIndex(double timestamp) {
  return static_cast<int64_t>(std::floor(timestamp / 86400.0));
}

}  // namespace trajkit::traj
