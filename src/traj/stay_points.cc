#include "traj/stay_points.h"

#include <array>

namespace trajkit::traj {

std::vector<StayPoint> DetectStayPoints(
    std::span<const TrajectoryPoint> points,
    const StayPointOptions& options) {
  std::vector<StayPoint> stays;
  const size_t n = points.size();
  size_t i = 0;
  while (i < n) {
    // Grow the candidate run anchored at i while fixes stay within the
    // distance threshold of the anchor.
    size_t j = i + 1;
    while (j < n && geo::HaversineMeters(points[i].pos, points[j].pos) <=
                        options.distance_threshold_m) {
      ++j;
    }
    // Run is [i, j); check the dwell time.
    const double dwell =
        points[j - 1].timestamp - points[i].timestamp;
    if (j > i + 1 && dwell >= options.time_threshold_s) {
      StayPoint stay;
      double lat = 0.0;
      double lon = 0.0;
      for (size_t k = i; k < j; ++k) {
        lat += points[k].pos.lat_deg;
        lon += points[k].pos.lon_deg;
      }
      const double count = static_cast<double>(j - i);
      stay.centroid = geo::LatLon{lat / count, lon / count};
      stay.arrival_time = points[i].timestamp;
      stay.departure_time = points[j - 1].timestamp;
      stay.first_index = i;
      stay.last_index = j - 1;
      stays.push_back(stay);
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

std::vector<Segment> SplitByStayPoints(const Trajectory& trajectory,
                                       const StayPointOptions& options,
                                       int min_points) {
  const std::vector<StayPoint> stays =
      DetectStayPoints(trajectory.points, options);
  std::vector<Segment> episodes;

  auto emit = [&](size_t begin, size_t end) {
    // Movement episode [begin, end); label with the majority mode.
    if (end <= begin ||
        end - begin < static_cast<size_t>(min_points)) {
      return;
    }
    Segment segment;
    segment.user_id = trajectory.user_id;
    segment.points.assign(trajectory.points.begin() + static_cast<long>(begin),
                          trajectory.points.begin() + static_cast<long>(end));
    segment.day = DayIndex(segment.points.front().timestamp);
    std::array<size_t, kNumModes> counts{};
    for (const TrajectoryPoint& p : segment.points) {
      ++counts[static_cast<size_t>(p.mode)];
    }
    size_t best = 0;
    for (size_t m = 1; m < counts.size(); ++m) {
      if (counts[m] > counts[best]) best = m;
    }
    segment.mode = static_cast<Mode>(best);
    episodes.push_back(std::move(segment));
  };

  size_t cursor = 0;
  for (const StayPoint& stay : stays) {
    emit(cursor, stay.first_index);
    cursor = stay.last_index + 1;
  }
  emit(cursor, trajectory.points.size());
  return episodes;
}

}  // namespace trajkit::traj
