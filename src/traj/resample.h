#ifndef TRAJKIT_TRAJ_RESAMPLE_H_
#define TRAJKIT_TRAJ_RESAMPLE_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "traj/types.h"

namespace trajkit::traj {

/// Options of the uniform resampler.
struct ResampleOptions {
  /// Output sampling interval in seconds.
  double interval_seconds = 2.0;
  /// Gaps longer than this are not interpolated across; the output keeps
  /// the discontinuity (a fresh sampling grid starts after the gap).
  /// <= 0 interpolates across every gap.
  double max_gap_seconds = 60.0;
};

/// Resamples a time-ordered fix sequence onto a uniform time grid with
/// linear interpolation of latitude/longitude. Real GeoLife recorders log
/// at irregular 1–5 s intervals; several compared methods (fixed-window
/// segmentation, sequence models) want a uniform rate. A resampled point
/// takes the mode of the earlier source point. Returns InvalidArgument
/// for fewer than 2 points or a non-positive interval.
Result<std::vector<TrajectoryPoint>> ResampleUniform(
    std::span<const TrajectoryPoint> points,
    const ResampleOptions& options = {});

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_RESAMPLE_H_
