#include "traj/point_features.h"

#include <array>

#include "common/check.h"
#include "geo/geodesy.h"

namespace trajkit::traj {

PointFeatures ComputePointFeatures(std::span<const TrajectoryPoint> points,
                                   const PointFeatureOptions& options) {
  TRAJKIT_CHECK_GE(points.size(), 2u);
  const size_t n = points.size();
  PointFeatures f;
  f.duration.resize(n);
  f.distance.resize(n);
  f.speed.resize(n);
  f.acceleration.resize(n);
  f.jerk.resize(n);
  f.bearing.resize(n);
  f.bearing_rate.resize(n);
  f.bearing_rate_rate.resize(n);

  // One stride-1 loop per channel: the geodesy pass below isolates the
  // libm calls (sin/cos/atan2 in haversine and bearing), and every
  // derivative chain after it is a pure subtract/divide loop over already
  // materialized columns — the shape compilers auto-vectorize. Each
  // element's arithmetic is unchanged from the interleaved form, so the
  // outputs are bit-identical (and still match the streaming extractor,
  // see serve/streaming_features.cc).
  for (size_t i = 1; i < n; ++i) {
    const double dt = points[i].timestamp - points[i - 1].timestamp;
    f.duration[i] =
        dt < options.min_duration_seconds ? options.min_duration_seconds : dt;
  }
  for (size_t i = 1; i < n; ++i) {
    f.distance[i] = geo::HaversineMeters(points[i - 1].pos, points[i].pos);
    f.bearing[i] = geo::InitialBearingDeg(points[i - 1].pos, points[i].pos);
  }
  for (size_t i = 1; i < n; ++i) {
    f.speed[i] = f.distance[i] / f.duration[i];
  }
  f.duration[0] = f.duration[1];
  f.distance[0] = f.distance[1];
  f.speed[0] = f.speed[1];
  f.bearing[0] = f.bearing[1];

  for (size_t i = 1; i < n; ++i) {
    f.acceleration[i] = (f.speed[i] - f.speed[i - 1]) / f.duration[i];
  }
  if (options.wrap_bearing_difference) {
    // Wrapping calls into fmod; its own loop keeps the pure loops clean.
    for (size_t i = 1; i < n; ++i) {
      f.bearing_rate[i] =
          geo::BearingDifferenceDeg(f.bearing[i - 1], f.bearing[i]) /
          f.duration[i];
    }
  } else {
    for (size_t i = 1; i < n; ++i) {
      f.bearing_rate[i] = (f.bearing[i] - f.bearing[i - 1]) / f.duration[i];
    }
  }
  f.acceleration[0] = f.acceleration[1];
  f.bearing_rate[0] = f.bearing_rate[1];

  for (size_t i = 1; i < n; ++i) {
    f.jerk[i] = (f.acceleration[i] - f.acceleration[i - 1]) / f.duration[i];
  }
  for (size_t i = 1; i < n; ++i) {
    f.bearing_rate_rate[i] =
        (f.bearing_rate[i] - f.bearing_rate[i - 1]) / f.duration[i];
  }
  f.jerk[0] = f.jerk[1];
  f.bearing_rate_rate[0] = f.bearing_rate_rate[1];

  return f;
}

std::span<const std::string_view> ChannelNames() {
  static constexpr std::array<std::string_view, kNumFeatureChannels> kNames = {
      "distance", "speed",        "acceleration",     "jerk",
      "bearing",  "bearing_rate", "bearing_rate_rate"};
  return kNames;
}

std::span<const double> ChannelValues(const PointFeatures& features,
                                      int channel) {
  switch (channel) {
    case 0:
      return features.distance;
    case 1:
      return features.speed;
    case 2:
      return features.acceleration;
    case 3:
      return features.jerk;
    case 4:
      return features.bearing;
    case 5:
      return features.bearing_rate;
    case 6:
      return features.bearing_rate_rate;
    default:
      break;
  }
  TRAJKIT_CHECK(false) << "channel index out of range:" << channel;
  return features.speed;  // Unreachable.
}

}  // namespace trajkit::traj
