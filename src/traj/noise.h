#ifndef TRAJKIT_TRAJ_NOISE_H_
#define TRAJKIT_TRAJ_NOISE_H_

#include <vector>

#include "traj/types.h"

namespace trajkit::traj {

/// Controls the optional noise-removal step (step 6 of the framework; the
/// procedure follows the authors' earlier paper [5]: outlier-point removal
/// followed by positional median smoothing).
struct NoiseRemovalOptions {
  /// Points implying an instantaneous speed above this bound (m/s) are
  /// treated as GPS glitches and dropped. 300 km/h ≈ faster than any
  /// labelled ground mode; airplane segments are exempted.
  double max_speed_mps = 83.0;
  /// Odd window width of the positional rolling-median filter; 1 disables
  /// smoothing.
  int median_window = 3;
  /// Maximum fraction of points the outlier pass may remove before the
  /// segment is deemed unusable (returned unchanged).
  double max_outlier_fraction = 0.5;
};

/// Result counters from a noise-removal pass.
struct NoiseRemovalStats {
  size_t points_in = 0;
  size_t outliers_removed = 0;
  size_t points_out = 0;
};

/// Removes speed outliers and median-smooths positions of one segment,
/// in place. Timestamps and labels are preserved for the surviving points.
NoiseRemovalStats RemoveNoise(Segment& segment,
                              const NoiseRemovalOptions& options = {});

/// Applies RemoveNoise to every segment; segments that fall below
/// `min_points` afterwards are dropped.
NoiseRemovalStats RemoveNoiseFromCorpus(
    std::vector<Segment>& segments, const NoiseRemovalOptions& options = {},
    int min_points = 10);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_NOISE_H_
