#ifndef TRAJKIT_TRAJ_SEGMENTATION_H_
#define TRAJKIT_TRAJ_SEGMENTATION_H_

#include <vector>

#include "traj/types.h"

namespace trajkit::traj {

/// Controls step 1 of the paper's framework.
struct SegmentationOptions {
  /// Sub-trajectories with fewer points are discarded ("Sub trajectories
  /// with less than ten trajectory points were discarded", §3.2).
  int min_points = 10;
  /// Start a new segment when the (UTC) day changes.
  bool split_on_day = true;
  /// Start a new segment when the annotated mode changes.
  bool split_on_mode = true;
  /// Start a new segment when the gap between consecutive fixes exceeds
  /// this many seconds; <= 0 disables gap splitting. Signal-loss handling.
  double max_gap_seconds = 0.0;
  /// Drop segments whose mode is kUnknown (unlabelled data is useless for
  /// supervised training).
  bool drop_unlabeled = true;
};

/// Splits one raw trajectory into maximal runs of (same day, same mode)
/// points, per the options. Points must be time-ordered; out-of-order points
/// are dropped (with the preceding point as reference), mirroring the
/// dataset-cleaning behaviour of the paper's TrajLib implementation.
std::vector<Segment> SegmentTrajectory(const Trajectory& trajectory,
                                       const SegmentationOptions& options);

/// Segments a whole corpus (all users).
std::vector<Segment> SegmentCorpus(const std::vector<Trajectory>& corpus,
                                   const SegmentationOptions& options);

/// Fixed-duration windowing, the alternative segmentation used by several
/// of the compared works (e.g. Dabiri & Heaslip cut fixed-size segments).
struct WindowSegmentationOptions {
  /// Window length in seconds.
  double window_seconds = 180.0;
  /// Windows with fewer points are discarded.
  int min_points = 10;
  /// Label = majority mode of the window's points; when this fraction of
  /// points disagrees with the majority, the window is dropped as mixed.
  double max_minority_fraction = 0.2;
  /// Drop windows whose majority mode is kUnknown.
  bool drop_unlabeled = true;
};

/// Cuts one trajectory into consecutive fixed-duration windows.
std::vector<Segment> SegmentTrajectoryByWindows(
    const Trajectory& trajectory, const WindowSegmentationOptions& options);

/// Windows a whole corpus.
std::vector<Segment> SegmentCorpusByWindows(
    const std::vector<Trajectory>& corpus,
    const WindowSegmentationOptions& options);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_SEGMENTATION_H_
