#ifndef TRAJKIT_TRAJ_SIMPLIFY_H_
#define TRAJKIT_TRAJ_SIMPLIFY_H_

#include <span>
#include <vector>

#include "traj/types.h"

namespace trajkit::traj {

/// Douglas–Peucker polyline simplification with a metric tolerance:
/// returns the subsequence of `points` whose piecewise-linear path stays
/// within `epsilon_m` meters of the original everywhere. Endpoints are
/// always kept; input order is preserved. Distances are computed on a
/// local tangent plane anchored at the first point (city-scale accurate).
/// Useful for storage/display; feature extraction should use the raw
/// fixes.
std::vector<TrajectoryPoint> SimplifyDouglasPeucker(
    std::span<const TrajectoryPoint> points, double epsilon_m);

/// In-place convenience over a Segment's points.
void SimplifySegment(Segment& segment, double epsilon_m);

}  // namespace trajkit::traj

#endif  // TRAJKIT_TRAJ_SIMPLIFY_H_
