#include "core/label_sets.h"

#include "common/check.h"

namespace trajkit::core {

using traj::Mode;

LabelSet::LabelSet(std::string name, std::vector<std::string> class_names,
                   std::vector<int> class_of_mode)
    : name_(std::move(name)),
      class_names_(std::move(class_names)),
      class_of_mode_(std::move(class_of_mode)) {
  TRAJKIT_CHECK_EQ(class_of_mode_.size(),
                   static_cast<size_t>(traj::kNumModes));
}

int LabelSet::ClassOf(Mode mode) const {
  const int index = static_cast<int>(mode);
  TRAJKIT_CHECK_GE(index, 0);
  TRAJKIT_CHECK_LT(index, traj::kNumModes);
  return class_of_mode_[static_cast<size_t>(index)];
}

Mode LabelSet::ModeOf(int class_index) const {
  if (class_index < 0) return Mode::kUnknown;
  for (size_t m = 0; m < class_of_mode_.size(); ++m) {
    if (class_of_mode_[m] == class_index) return static_cast<Mode>(m);
  }
  return Mode::kUnknown;
}

LabelSet LabelSet::Dabiri() {
  std::vector<int> map(traj::kNumModes, -1);
  map[static_cast<int>(Mode::kWalk)] = 0;
  map[static_cast<int>(Mode::kBike)] = 1;
  map[static_cast<int>(Mode::kBus)] = 2;
  map[static_cast<int>(Mode::kCar)] = 3;   // driving
  map[static_cast<int>(Mode::kTaxi)] = 3;  // driving
  map[static_cast<int>(Mode::kTrain)] = 4;
  map[static_cast<int>(Mode::kSubway)] = 4;
  return LabelSet("dabiri", {"walk", "bike", "bus", "driving", "train"},
                  std::move(map));
}

LabelSet LabelSet::Endo() {
  std::vector<int> map(traj::kNumModes, -1);
  map[static_cast<int>(Mode::kWalk)] = 0;
  map[static_cast<int>(Mode::kBike)] = 1;
  map[static_cast<int>(Mode::kBus)] = 2;
  map[static_cast<int>(Mode::kCar)] = 3;
  map[static_cast<int>(Mode::kTaxi)] = 4;
  map[static_cast<int>(Mode::kSubway)] = 5;
  map[static_cast<int>(Mode::kTrain)] = 6;
  return LabelSet(
      "endo",
      {"walk", "bike", "bus", "car", "taxi", "subway", "train"},
      std::move(map));
}

LabelSet LabelSet::AllModes() {
  std::vector<int> map(traj::kNumModes, -1);
  std::vector<std::string> names;
  int next = 0;
  for (Mode mode : traj::AllLabeledModes()) {
    map[static_cast<int>(mode)] = next++;
    names.emplace_back(traj::ModeToString(mode));
  }
  return LabelSet("all_modes", std::move(names), std::move(map));
}

}  // namespace trajkit::core
