#ifndef TRAJKIT_CORE_LABEL_SETS_H_
#define TRAJKIT_CORE_LABEL_SETS_H_

#include <string>
#include <vector>

#include "traj/types.h"

namespace trajkit::core {

/// A mapping from annotated transportation modes to experiment classes.
/// Modes outside the set are excluded from the experiment (their segments
/// are dropped). Reproduces the label filters of the compared papers.
class LabelSet {
 public:
  /// Dabiri & Heaslip [2]: {walk, bike, bus, driving, train} where driving
  /// merges car+taxi and train merges train+subway (§4.3). Used by the
  /// Fig. 2 classifier-selection experiment.
  static LabelSet Dabiri();

  /// Endo et al. [4]: the labelled GeoLife modes kept distinct —
  /// {walk, bike, bus, car, taxi, subway, train}. Used by the Fig. 3
  /// feature-selection experiments and the §4.3 user-split comparison.
  static LabelSet Endo();

  /// All eleven annotated modes, each its own class.
  static LabelSet AllModes();

  /// Class index of a mode, or -1 when the mode is excluded.
  int ClassOf(traj::Mode mode) const;

  /// Inverse of ClassOf: the first mode (enum order) mapping to
  /// `class_index`, or kUnknown when no mode does (including -1). Merged
  /// classes ("driving" = car+taxi) answer their first member.
  traj::Mode ModeOf(int class_index) const;

  const std::vector<std::string>& class_names() const { return class_names_; }
  int num_classes() const { return static_cast<int>(class_names_.size()); }
  const std::string& name() const { return name_; }

 private:
  LabelSet(std::string name, std::vector<std::string> class_names,
           std::vector<int> class_of_mode);

  std::string name_;
  std::vector<std::string> class_names_;
  /// Indexed by Mode enum value; -1 = excluded.
  std::vector<int> class_of_mode_;
};

}  // namespace trajkit::core

#endif  // TRAJKIT_CORE_LABEL_SETS_H_
