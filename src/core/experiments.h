#ifndef TRAJKIT_CORE_EXPERIMENTS_H_
#define TRAJKIT_CORE_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/dataset.h"
#include "ml/splits.h"
#include "synthgeo/generator.h"

namespace trajkit::core {

/// The cross-validation schemes compared in §4.4.
enum class CvScheme {
  /// Conventional shuffled k-fold ("random cross-validation").
  kRandom,
  /// Stratified shuffled k-fold (random CV preserving class mix).
  kStratified,
  /// Group k-fold on user ids ("user-oriented cross-validation").
  kUserOriented,
  /// Forward-chaining temporal folds (train strictly precedes test) — the
  /// "holdout" strategy §5 names as future work. Requires
  /// Dataset::has_times(); MakeFolds falls back to kRandom otherwise.
  kTemporal,
};

/// Parses "random" / "stratified" / "user" into a scheme.
Result<CvScheme> CvSchemeFromString(std::string_view name);
std::string_view CvSchemeToString(CvScheme scheme);

/// Builds k folds of `dataset` under the scheme.
std::vector<ml::FoldSplit> MakeFolds(CvScheme scheme,
                                     const ml::Dataset& dataset, int k,
                                     uint64_t seed);

/// One-call synthetic-corpus → Dataset path used by the experiment
/// harnesses and examples. Returns the dataset plus generation/pipeline
/// diagnostics.
struct SyntheticDatasetResult {
  ml::Dataset dataset;
  synthgeo::CorpusSummary corpus_summary;
  PipelineStats pipeline_stats;
};
Result<SyntheticDatasetResult> BuildSyntheticDataset(
    const synthgeo::GeneratorOptions& generator_options,
    const PipelineOptions& pipeline_options, const LabelSet& labels);

}  // namespace trajkit::core

#endif  // TRAJKIT_CORE_EXPERIMENTS_H_
