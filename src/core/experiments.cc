#include "core/experiments.h"

#include "common/rng.h"

namespace trajkit::core {

Result<CvScheme> CvSchemeFromString(std::string_view name) {
  if (name == "random") return CvScheme::kRandom;
  if (name == "stratified") return CvScheme::kStratified;
  if (name == "user" || name == "user_oriented") {
    return CvScheme::kUserOriented;
  }
  if (name == "temporal") return CvScheme::kTemporal;
  return Status::InvalidArgument("unknown CV scheme: '" + std::string(name) +
                                 "'");
}

std::string_view CvSchemeToString(CvScheme scheme) {
  switch (scheme) {
    case CvScheme::kRandom:
      return "random";
    case CvScheme::kStratified:
      return "stratified";
    case CvScheme::kUserOriented:
      return "user_oriented";
    case CvScheme::kTemporal:
      return "temporal";
  }
  return "unknown";
}

std::vector<ml::FoldSplit> MakeFolds(CvScheme scheme,
                                     const ml::Dataset& dataset, int k,
                                     uint64_t seed) {
  Rng rng(seed);
  switch (scheme) {
    case CvScheme::kRandom:
      return ml::KFold(dataset.num_samples(), k, rng);
    case CvScheme::kStratified:
      return ml::StratifiedKFold(dataset.labels(), k, rng);
    case CvScheme::kUserOriented:
      return ml::GroupKFold(dataset.groups(), k, rng);
    case CvScheme::kTemporal:
      if (!dataset.has_times()) {
        return ml::KFold(dataset.num_samples(), k, rng);
      }
      return ml::TemporalKFold(dataset.times(), k);
  }
  return {};
}

Result<SyntheticDatasetResult> BuildSyntheticDataset(
    const synthgeo::GeneratorOptions& generator_options,
    const PipelineOptions& pipeline_options, const LabelSet& labels) {
  synthgeo::GeoLifeLikeGenerator generator(generator_options);
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  const Pipeline pipeline(pipeline_options);
  TRAJKIT_ASSIGN_OR_RETURN(ml::Dataset dataset,
                           pipeline.BuildDataset(corpus, labels));
  SyntheticDatasetResult out{std::move(dataset), generator.summary(),
                             pipeline.stats()};
  return out;
}

}  // namespace trajkit::core
