#ifndef TRAJKIT_CORE_PIPELINE_H_
#define TRAJKIT_CORE_PIPELINE_H_

#include <vector>

#include "common/result.h"
#include "core/label_sets.h"
#include "ml/dataset.h"
#include "traj/extended_features.h"
#include "traj/noise.h"
#include "traj/segmentation.h"
#include "traj/trajectory_features.h"
#include "traj/types.h"

namespace trajkit::core {

/// How step 1 cuts raw trajectories into classification units.
enum class SegmentationStrategy {
  /// The paper's scheme: maximal runs of (user, day, mode).
  kUserDayMode,
  /// Fixed-duration windows with majority-vote labels (the scheme of
  /// several compared works; needs no test-time mode annotations).
  kFixedWindows,
};

/// Configuration of the paper's 8-step framework (Fig. 1):
///   1 segmentation  2 point features  3 trajectory features
///   4-5 feature selection (done by the caller on the emitted Dataset)
///   6 optional noise removal  7 normalization  8 classification.
/// Normalization (7) is performed inside the cross-validation driver so
/// the scaler is fit on training folds only; the pipeline emits raw
/// features.
struct PipelineOptions {
  SegmentationStrategy strategy = SegmentationStrategy::kUserDayMode;
  traj::SegmentationOptions segmentation;
  traj::WindowSegmentationOptions windows;
  traj::PointFeatureOptions point_features;
  /// Step 6. The paper leaves it off for the headline comparisons ("we do
  /// not have access to labels of the test dataset"); the ablation bench
  /// turns it on.
  bool remove_noise = false;
  traj::NoiseRemovalOptions noise;
  /// Append the 8 Zheng-style segment-level features (extended_features.h)
  /// after the 70 statistics — the paper's future-work direction.
  bool include_extended_features = false;
  traj::ExtendedFeatureOptions extended;
};

/// Counters from one BuildDataset call.
struct PipelineStats {
  size_t segments_total = 0;     // After segmentation + min-point filter.
  size_t segments_in_label_set = 0;
  size_t points_total = 0;
  size_t outliers_removed = 0;   // Only when remove_noise.
};

/// Turns a raw GPS corpus into the 70-feature (or 78 with extended
/// features) learning problem.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  /// Runs steps 1–3 (+6 when enabled) and assembles a Dataset: one row per
  /// sub-trajectory whose mode is in `labels`, trajectory features, class
  /// index from `labels`, group id = user id.
  Result<ml::Dataset> BuildDataset(
      const std::vector<traj::Trajectory>& corpus,
      const LabelSet& labels) const;

  /// BuildDataset from pre-segmented data (reuses segmentation output
  /// across label sets).
  Result<ml::Dataset> BuildDatasetFromSegments(
      std::vector<traj::Segment> segments, const LabelSet& labels) const;

  /// The emitted feature names (70, or 78 with extended features).
  std::vector<std::string> FeatureNames() const;

  /// Stats of the most recent build.
  const PipelineStats& stats() const { return stats_; }

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  mutable PipelineStats stats_;
};

}  // namespace trajkit::core

#endif  // TRAJKIT_CORE_PIPELINE_H_
