#include "core/pipeline.h"

#include <optional>

#include "common/parallel.h"
#include "obs/trace.h"
#include "traj/point_features.h"

namespace trajkit::core {

Pipeline::Pipeline(PipelineOptions options) : options_(options) {}

Result<ml::Dataset> Pipeline::BuildDataset(
    const std::vector<traj::Trajectory>& corpus,
    const LabelSet& labels) const {
  // Stage spans nest under "pipeline": segmentation here, then the
  // noise/extract/assemble stages inside BuildDatasetFromSegments — the
  // whole 8-step run exports as the span/pipeline/* histogram family.
  obs::TraceSpan span("pipeline");
  std::vector<traj::Segment> segments;
  {
    obs::TraceSpan segment_span("segment");
    segments = options_.strategy == SegmentationStrategy::kUserDayMode
                   ? traj::SegmentCorpus(corpus, options_.segmentation)
                   : traj::SegmentCorpusByWindows(corpus, options_.windows);
  }
  return BuildDatasetFromSegments(std::move(segments), labels);
}

std::vector<std::string> Pipeline::FeatureNames() const {
  std::vector<std::string> names =
      traj::TrajectoryFeatureExtractor::FeatureNames();
  if (options_.include_extended_features) {
    const std::vector<std::string>& extended = traj::ExtendedFeatureNames();
    names.insert(names.end(), extended.begin(), extended.end());
  }
  return names;
}

Result<ml::Dataset> Pipeline::BuildDatasetFromSegments(
    std::vector<traj::Segment> segments, const LabelSet& labels) const {
  // Direct callers (pre-segmented corpora) still get the pipeline span as
  // the stage parent; via BuildDataset the root span already exists.
  std::optional<obs::TraceSpan> root;
  if (obs::TraceSpan::CurrentDepth() == 0) root.emplace("pipeline");
  stats_ = PipelineStats{};
  stats_.segments_total = segments.size();
  obs::MetricsRegistry::Global()
      .GetCounter("core.pipeline.segments_total")
      .Increment(segments.size());

  if (options_.remove_noise) {
    obs::TraceSpan noise_span("noise");
    const int min_points =
        options_.strategy == SegmentationStrategy::kUserDayMode
            ? options_.segmentation.min_points
            : options_.windows.min_points;
    const traj::NoiseRemovalStats noise_stats = traj::RemoveNoiseFromCorpus(
        segments, options_.noise, min_points);
    stats_.outliers_removed = noise_stats.outliers_removed;
    obs::MetricsRegistry::Global()
        .GetCounter("core.pipeline.outliers_removed")
        .Increment(noise_stats.outliers_removed);
  }

  const traj::TrajectoryFeatureExtractor extractor(options_.point_features);
  traj::ExtendedFeatureOptions extended_options = options_.extended;
  extended_options.point_features = options_.point_features;
  const traj::ExtendedFeatureExtractor extended_extractor(extended_options);

  // Cheap serial pass to pick the eligible segments, then the per-segment
  // 70(+)-dim extraction — the expensive part — runs in parallel, each
  // segment writing only its own row (bit-identical at any thread count).
  struct Eligible {
    const traj::Segment* segment;
    int cls;
  };
  std::vector<Eligible> eligible;
  eligible.reserve(segments.size());
  for (const traj::Segment& segment : segments) {
    const int cls = labels.ClassOf(segment.mode);
    if (cls < 0) continue;
    if (segment.points.size() < 2) continue;
    eligible.push_back({&segment, cls});
  }

  std::vector<std::vector<double>> rows(eligible.size());
  {
    obs::TraceSpan extract_span("extract");
    TRAJKIT_RETURN_IF_ERROR(
        ParallelFor(0, eligible.size(), 4, [&](size_t i) {
          const traj::Segment& segment = *eligible[i].segment;
          // Point features are computed once and shared by both extractors.
          const traj::PointFeatures point_features = traj::ComputePointFeatures(
              segment.points, options_.point_features);
          std::vector<double> features =
              extractor.ExtractFromPointFeatures(point_features);
          if (options_.include_extended_features) {
            const std::vector<double> extended =
                extended_extractor.ExtractFromPointFeatures(point_features,
                                                            segment.points);
            features.insert(features.end(), extended.begin(), extended.end());
          }
          rows[i] = std::move(features);
        }));
  }

  obs::TraceSpan assemble_span("assemble");
  std::vector<int> y;
  std::vector<int> groups;
  std::vector<double> times;
  y.reserve(eligible.size());
  groups.reserve(eligible.size());
  times.reserve(eligible.size());
  for (const Eligible& item : eligible) {
    y.push_back(item.cls);
    groups.push_back(item.segment->user_id);
    times.push_back(item.segment->points.front().timestamp);
    stats_.points_total += item.segment->points.size();
  }
  stats_.segments_in_label_set = rows.size();
  obs::MetricsRegistry::Global()
      .GetCounter("core.pipeline.segments_in_label_set")
      .Increment(rows.size());
  if (rows.empty()) {
    return Status::InvalidArgument(
        "no segments matched the label set '" + labels.name() +
        "' — corpus too small or labels missing");
  }
  TRAJKIT_ASSIGN_OR_RETURN(
      ml::Dataset dataset,
      ml::Dataset::Create(ml::Matrix::FromRows(rows), std::move(y),
                          std::move(groups), FeatureNames(),
                          labels.class_names()));
  TRAJKIT_RETURN_IF_ERROR(dataset.SetTimes(std::move(times)));
  return dataset;
}

}  // namespace trajkit::core
