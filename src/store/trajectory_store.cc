#include "store/trajectory_store.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "store/hilbert.h"

namespace trajkit::store {
namespace {

/// Discretizes `v` in [lo, hi] onto the Hilbert grid [0, 2^order).
uint32_t GridCoord(double v, double lo, double hi, int order) {
  const uint32_t cells = (1u << order) - 1;
  if (!(hi > lo)) return 0;  // Degenerate extent: everything in cell 0.
  double t = (v - lo) / (hi - lo);
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return static_cast<uint32_t>(t * cells);
}

bool BoxesOverlap(const geo::BoundingBox& a, const geo::BoundingBox& b) {
  return a.IsInitialized() && b.IsInitialized() &&
         a.min_lat <= b.max_lat && b.min_lat <= a.max_lat &&
         a.min_lon <= b.max_lon && b.min_lon <= a.max_lon;
}

int64_t CellIndex(double v, double cell_deg) {
  return static_cast<int64_t>(std::floor(v / cell_deg));
}

}  // namespace

Result<ModeMask> ParseModeMask(std::string_view csv) {
  if (csv.empty()) return kAllModesMask;
  ModeMask mask = 0;
  for (std::string_view token : SplitString(csv, ',')) {
    token = StripWhitespace(token);
    if (token.empty()) continue;
    TRAJKIT_ASSIGN_OR_RETURN(traj::Mode mode, traj::ModeFromString(token));
    mask |= MaskOf(mode);
  }
  if (mask == 0) {
    return Status::InvalidArgument("mode list selects no modes: '" +
                                   std::string(csv) + "'");
  }
  return mask;
}

StoredSegment FromClosedSegment(const serve::ClosedSegment& segment,
                                traj::Mode predicted_mode) {
  StoredSegment stored;
  stored.session_id = segment.session_id;
  stored.user_id = segment.user_id;
  stored.day = segment.day;
  stored.predicted_mode = predicted_mode;
  stored.true_mode = segment.mode;
  stored.start_time = segment.start_time;
  stored.end_time = segment.end_time;
  stored.num_points = static_cast<uint32_t>(segment.num_points);
  stored.bbox = segment.bbox;
  stored.features = segment.features;
  stored.points = segment.points;
  return stored;
}

TrajectoryStore::TrajectoryStore(TrajectoryStoreOptions options)
    : options_(options),
      metric_segments_(
          obs::MetricsRegistry::Global().GetCounter("store.segments")),
      metric_bulk_loads_(
          obs::MetricsRegistry::Global().GetCounter("store.bulk_loads")),
      metric_queries_(
          obs::MetricsRegistry::Global().GetCounter("store.queries")),
      metric_nodes_visited_(obs::MetricsRegistry::Global().GetCounter(
          "store.query.nodes_visited")),
      metric_postings_skipped_(obs::MetricsRegistry::Global().GetCounter(
          "store.query.postings_skipped")),
      metric_size_(obs::MetricsRegistry::Global().GetGauge("store.size")),
      metric_index_nodes_(
          obs::MetricsRegistry::Global().GetGauge("store.index.nodes")),
      metric_query_latency_(obs::MetricsRegistry::Global().GetHistogram(
          "store.query.latency_seconds")),
      metric_bulk_load_seconds_(obs::MetricsRegistry::Global().GetHistogram(
          "store.bulk_load_seconds", obs::HistogramOptions::DurationSeconds())) {
  TRAJKIT_CHECK(options_.leaf_fanout >= 2) << "leaf_fanout must be >= 2";
  TRAJKIT_CHECK(options_.fanout >= 2) << "fanout must be >= 2";
  postings_.resize(traj::kNumModes);
}

void TrajectoryStore::Ingest(StoredSegment segment) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(segments_.size());
  const geo::BoundingBox& box = segment.bbox;
  center_lat_.push_back(
      box.IsInitialized() ? (box.min_lat + box.max_lat) * 0.5 : 0.0);
  center_lon_.push_back(
      box.IsInitialized() ? (box.min_lon + box.max_lon) * 0.5 : 0.0);
  // Columnar match keys; an uninitialized MBR becomes an inverted
  // sentinel interval that fails every overlap test (cf. BoxesOverlap).
  const bool boxed = box.IsInitialized();
  seg_min_lat_.push_back(boxed ? box.min_lat : 2.0e9);
  seg_max_lat_.push_back(boxed ? box.max_lat : -2.0e9);
  seg_min_lon_.push_back(boxed ? box.min_lon : 2.0e9);
  seg_max_lon_.push_back(boxed ? box.max_lon : -2.0e9);
  seg_t_min_.push_back(segment.start_time);
  seg_t_max_.push_back(segment.end_time);
  seg_mask_.push_back(MaskOf(segment.predicted_mode));
  postings_[static_cast<size_t>(segment.predicted_mode)].push_back(id);
  by_user_[segment.user_id].push_back(id);
  segments_.push_back(std::move(segment));
  dirty_ = true;
  ++stats_.segments;
  metric_segments_.Increment();
  metric_size_.Set(static_cast<double>(segments_.size()));
}

std::function<void(const serve::ClosedSegment&)>
TrajectoryStore::MakeSessionSink() {
  return [this](const serve::ClosedSegment& segment) {
    Ingest(FromClosedSegment(segment, segment.mode));
  };
}

size_t TrajectoryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

StoredSegment TrajectoryStore::Segment(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  TRAJKIT_CHECK(id < segments_.size()) << "segment id out of range";
  return segments_[id];
}

void TrajectoryStore::BuildIndex() {
  std::lock_guard<std::mutex> lock(mu_);
  BuildIndexLocked();
}

void TrajectoryStore::BuildIndexLocked() const {
  if (!dirty_) return;
  Stopwatch timer;
  const size_t n = segments_.size();
  order_.resize(n);
  for (uint32_t i = 0; i < n; ++i) order_[i] = i;

  if (n > 1) {
    // Extent of the MBR centers — the frame both packings sort within.
    double lat_lo = center_lat_[0], lat_hi = center_lat_[0];
    double lon_lo = center_lon_[0], lon_hi = center_lon_[0];
    for (size_t i = 1; i < n; ++i) {
      lat_lo = std::min(lat_lo, center_lat_[i]);
      lat_hi = std::max(lat_hi, center_lat_[i]);
      lon_lo = std::min(lon_lo, center_lon_[i]);
      lon_hi = std::max(lon_hi, center_lon_[i]);
    }
    if (options_.strategy == BulkLoadStrategy::kHilbert) {
      std::vector<uint64_t> key(n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t gx =
            GridCoord(center_lon_[i], lon_lo, lon_hi, kHilbertOrder);
        const uint32_t gy =
            GridCoord(center_lat_[i], lat_lo, lat_hi, kHilbertOrder);
        key[i] = HilbertDistance(gx, gy);
      }
      std::sort(order_.begin(), order_.end(),
                [&key](uint32_t a, uint32_t b) {
                  return key[a] != key[b] ? key[a] < key[b] : a < b;
                });
    } else {
      // STR: longitude-sorted vertical slabs, each latitude-sorted.
      const auto by_lon = [this](uint32_t a, uint32_t b) {
        return center_lon_[a] != center_lon_[b]
                   ? center_lon_[a] < center_lon_[b]
                   : a < b;
      };
      const auto by_lat = [this](uint32_t a, uint32_t b) {
        return center_lat_[a] != center_lat_[b]
                   ? center_lat_[a] < center_lat_[b]
                   : a < b;
      };
      std::sort(order_.begin(), order_.end(), by_lon);
      const size_t num_leaves =
          (n + options_.leaf_fanout - 1) / options_.leaf_fanout;
      const size_t num_slabs = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(num_leaves))));
      const size_t slab =
          (n + num_slabs - 1) / std::max<size_t>(1, num_slabs);
      for (size_t begin = 0; begin < n; begin += slab) {
        const size_t end = std::min(n, begin + slab);
        std::sort(order_.begin() + static_cast<ptrdiff_t>(begin),
                  order_.begin() + static_cast<ptrdiff_t>(end), by_lat);
      }
    }
  }

  // Pack leaves over the sorted order, then parent levels bottom-up until
  // one root remains. Children of a node are contiguous in nodes_.
  nodes_.clear();
  height_ = 0;
  if (n > 0) {
    for (size_t begin = 0; begin < n; begin += options_.leaf_fanout) {
      const size_t end = std::min(n, begin + options_.leaf_fanout);
      Node node;
      node.leaf = true;
      node.begin = static_cast<uint32_t>(begin);
      node.end = static_cast<uint32_t>(end);
      node.entry_begin = node.begin;
      node.entry_end = node.end;
      bool first = true;
      for (size_t i = begin; i < end; ++i) {
        const StoredSegment& segment = segments_[order_[i]];
        const geo::BoundingBox& box = segment.bbox;
        node.pure = node.pure && box.IsInitialized();
        const double lo_lat = box.IsInitialized() ? box.min_lat : 0.0;
        const double hi_lat = box.IsInitialized() ? box.max_lat : 0.0;
        const double lo_lon = box.IsInitialized() ? box.min_lon : 0.0;
        const double hi_lon = box.IsInitialized() ? box.max_lon : 0.0;
        if (first) {
          node.min_lat = lo_lat;
          node.max_lat = hi_lat;
          node.min_lon = lo_lon;
          node.max_lon = hi_lon;
          node.t_min = segment.start_time;
          node.t_max = segment.end_time;
          first = false;
        } else {
          node.min_lat = std::min(node.min_lat, lo_lat);
          node.max_lat = std::max(node.max_lat, hi_lat);
          node.min_lon = std::min(node.min_lon, lo_lon);
          node.max_lon = std::max(node.max_lon, hi_lon);
          node.t_min = std::min(node.t_min, segment.start_time);
          node.t_max = std::max(node.t_max, segment.end_time);
        }
        node.mask |= MaskOf(segment.predicted_mode);
      }
      nodes_.push_back(node);
    }
    height_ = 1;
    size_t level_begin = 0;
    size_t level_end = nodes_.size();
    while (level_end - level_begin > 1) {
      for (size_t begin = level_begin; begin < level_end;
           begin += options_.fanout) {
        const size_t end = std::min(level_end, begin + options_.fanout);
        Node node;
        node.leaf = false;
        node.begin = static_cast<uint32_t>(begin);
        node.end = static_cast<uint32_t>(end);
        node.entry_begin = nodes_[begin].entry_begin;
        node.entry_end = nodes_[end - 1].entry_end;
        node.min_lat = nodes_[begin].min_lat;
        node.max_lat = nodes_[begin].max_lat;
        node.min_lon = nodes_[begin].min_lon;
        node.max_lon = nodes_[begin].max_lon;
        node.t_min = nodes_[begin].t_min;
        node.t_max = nodes_[begin].t_max;
        for (size_t i = begin; i < end; ++i) {
          node.min_lat = std::min(node.min_lat, nodes_[i].min_lat);
          node.max_lat = std::max(node.max_lat, nodes_[i].max_lat);
          node.min_lon = std::min(node.min_lon, nodes_[i].min_lon);
          node.max_lon = std::max(node.max_lon, nodes_[i].max_lon);
          node.t_min = std::min(node.t_min, nodes_[i].t_min);
          node.t_max = std::max(node.t_max, nodes_[i].t_max);
          node.mask |= nodes_[i].mask;
          node.pure = node.pure && nodes_[i].pure;
        }
        nodes_.push_back(node);
      }
      level_begin = level_end;
      level_end = nodes_.size();
      ++height_;
    }
  }

  dirty_ = false;
  ++stats_.bulk_loads;
  stats_.index_nodes = nodes_.size();
  stats_.index_height = height_;
  metric_bulk_loads_.Increment();
  metric_index_nodes_.Set(static_cast<double>(nodes_.size()));
  metric_bulk_load_seconds_.Observe(timer.ElapsedSeconds());
}

bool TrajectoryStore::MatchesLocked(uint32_t id, const geo::BoundingBox& box,
                                    const TimeRange& time,
                                    ModeMask mask) const {
  const StoredSegment& segment = segments_[id];
  return (mask & MaskOf(segment.predicted_mode)) != 0 &&
         time.Overlaps(segment.start_time, segment.end_time) &&
         BoxesOverlap(segment.bbox, box);
}

std::vector<uint32_t> TrajectoryStore::QueryBBoxLocked(
    const geo::BoundingBox& box, const TimeRange& time,
    ModeMask mask) const {
  BuildIndexLocked();
  std::vector<uint32_t> result;
  ++stats_.queries;
  metric_queries_.Increment();

  // Postings fast path: when the mode mask is selective, the inverted
  // lists already exclude most of the store — scan them instead of the
  // tree and count what was never examined.
  if (options_.postings_selectivity > 0 && mask != kAllModesMask) {
    size_t candidates = 0;
    for (size_t m = 0; m < postings_.size(); ++m) {
      if (mask & (1u << m)) candidates += postings_[m].size();
    }
    if (candidates * options_.postings_selectivity < segments_.size()) {
      for (size_t m = 0; m < postings_.size(); ++m) {
        if ((mask & (1u << m)) == 0) continue;
        for (const uint32_t id : postings_[m]) {
          if (MatchesColumnarLocked(id, box, time, mask)) result.push_back(id);
        }
      }
      const size_t skipped = segments_.size() - candidates;
      stats_.postings_skipped += skipped;
      metric_postings_skipped_.Increment(skipped);
      std::sort(result.begin(), result.end());
      return result;
    }
  }

  if (nodes_.empty()) return result;
  size_t visited = 0;
  std::vector<uint32_t> stack;
  stack.push_back(static_cast<uint32_t>(nodes_.size() - 1));  // Root.
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    if ((node.mask & mask) == 0) continue;
    if (node.max_lat < box.min_lat || node.min_lat > box.max_lat ||
        node.max_lon < box.min_lon || node.min_lon > box.max_lon) {
      continue;
    }
    if (node.t_max < time.begin || node.t_min > time.end) continue;
    // Full containment: the query covers this subtree's MBR, time span,
    // and mode set, so every entry below matches — emit the subtree's
    // contiguous order_ run without examining a single segment.
    if (node.pure && box.min_lat <= node.min_lat &&
        node.max_lat <= box.max_lat && box.min_lon <= node.min_lon &&
        node.max_lon <= box.max_lon && time.begin <= node.t_min &&
        node.t_max <= time.end && (node.mask & ~mask) == 0) {
      result.insert(result.end(), order_.begin() + node.entry_begin,
                    order_.begin() + node.entry_end);
      continue;
    }
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = order_[i];
        if (MatchesColumnarLocked(id, box, time, mask)) result.push_back(id);
      }
    } else {
      for (uint32_t child = node.begin; child < node.end; ++child) {
        stack.push_back(child);
      }
    }
  }
  stats_.nodes_visited += visited;
  metric_nodes_visited_.Increment(visited);
  // Restore ascending-id order. Ids are unique, so for large results a
  // bitmap pass is O(size()/64 + |result|) — cheaper than comparison
  // sorting the Hilbert-ordered emission of a wide query.
  if (result.size() > 1024) {
    std::vector<uint64_t> bits((segments_.size() + 63) / 64, 0);
    for (const uint32_t id : result) bits[id >> 6] |= 1ull << (id & 63);
    size_t out = 0;
    for (size_t word = 0; word < bits.size(); ++word) {
      uint64_t w = bits[word];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        w &= w - 1;
        result[out++] = static_cast<uint32_t>((word << 6) | bit);
      }
    }
  } else {
    std::sort(result.begin(), result.end());
  }
  return result;
}

std::vector<uint32_t> TrajectoryStore::QueryBBox(const geo::BoundingBox& box,
                                                 const TimeRange& time,
                                                 ModeMask mask) const {
  Stopwatch timer;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> result = QueryBBoxLocked(box, time, mask);
  metric_query_latency_.Observe(timer.ElapsedSeconds());
  return result;
}

std::vector<uint32_t> TrajectoryStore::QueryUser(int32_t user_id,
                                                 const TimeRange& time) const {
  Stopwatch timer;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  metric_queries_.Increment();
  std::vector<uint32_t> result;
  const auto it = by_user_.find(user_id);
  if (it != by_user_.end()) {
    for (const uint32_t id : it->second) {
      const StoredSegment& segment = segments_[id];
      if (time.Overlaps(segment.start_time, segment.end_time)) {
        result.push_back(id);
      }
    }
  }
  metric_query_latency_.Observe(timer.ElapsedSeconds());
  return result;
}

std::vector<HotspotCell> TrajectoryStore::TopKHotspotsScan(
    double cell_deg, size_t k, ModeMask mask) const {
  TRAJKIT_CHECK(cell_deg > 0.0) << "cell_deg must be positive";
  // Deterministic aggregation: cells keyed (lat, lon) in a sorted map, so
  // the final ordering is independent of insertion order.
  std::map<std::pair<int64_t, int64_t>, uint64_t> counts;
  for (uint32_t id = 0; id < segments_.size(); ++id) {
    if ((mask & MaskOf(segments_[id].predicted_mode)) == 0) continue;
    if (!segments_[id].bbox.IsInitialized()) continue;
    const int64_t cell_lat = CellIndex(center_lat_[id], cell_deg);
    const int64_t cell_lon = CellIndex(center_lon_[id], cell_deg);
    ++counts[{cell_lat, cell_lon}];
  }
  std::vector<HotspotCell> cells;
  cells.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    HotspotCell cell;
    cell.cell_lat = key.first;
    cell.cell_lon = key.second;
    cell.count = count;
    cell.bounds.Extend(geo::LatLon{static_cast<double>(key.first) * cell_deg,
                                   static_cast<double>(key.second) * cell_deg});
    cell.bounds.Extend(
        geo::LatLon{static_cast<double>(key.first + 1) * cell_deg,
                    static_cast<double>(key.second + 1) * cell_deg});
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end(),
            [](const HotspotCell& a, const HotspotCell& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.cell_lat != b.cell_lat) return a.cell_lat < b.cell_lat;
              return a.cell_lon < b.cell_lon;
            });
  if (cells.size() > k) cells.resize(k);
  return cells;
}

std::vector<HotspotCell> TrajectoryStore::TopKHotspots(double cell_deg,
                                                       size_t k,
                                                       ModeMask mask) const {
  Stopwatch timer;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  metric_queries_.Increment();
  std::vector<HotspotCell> cells = TopKHotspotsScan(cell_deg, k, mask);
  metric_query_latency_.Observe(timer.ElapsedSeconds());
  return cells;
}

std::vector<uint32_t> TrajectoryStore::QueryBBoxBruteForce(
    const geo::BoundingBox& box, const TimeRange& time,
    ModeMask mask) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> result;
  for (uint32_t id = 0; id < segments_.size(); ++id) {
    if (MatchesLocked(id, box, time, mask)) result.push_back(id);
  }
  return result;
}

std::vector<uint32_t> TrajectoryStore::QueryUserBruteForce(
    int32_t user_id, const TimeRange& time) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> result;
  for (uint32_t id = 0; id < segments_.size(); ++id) {
    const StoredSegment& segment = segments_[id];
    if (segment.user_id == user_id &&
        time.Overlaps(segment.start_time, segment.end_time)) {
      result.push_back(id);
    }
  }
  return result;
}

std::vector<HotspotCell> TrajectoryStore::TopKHotspotsBruteForce(
    double cell_deg, size_t k, ModeMask mask) const {
  TRAJKIT_CHECK(cell_deg > 0.0) << "cell_deg must be positive";
  std::lock_guard<std::mutex> lock(mu_);
  // Independent of the indexed path: recompute centers from the raw MBRs.
  std::map<std::pair<int64_t, int64_t>, uint64_t> counts;
  for (const StoredSegment& segment : segments_) {
    if ((mask & MaskOf(segment.predicted_mode)) == 0) continue;
    if (!segment.bbox.IsInitialized()) continue;
    const double lat = (segment.bbox.min_lat + segment.bbox.max_lat) * 0.5;
    const double lon = (segment.bbox.min_lon + segment.bbox.max_lon) * 0.5;
    ++counts[{CellIndex(lat, cell_deg), CellIndex(lon, cell_deg)}];
  }
  std::vector<HotspotCell> cells;
  cells.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    HotspotCell cell;
    cell.cell_lat = key.first;
    cell.cell_lon = key.second;
    cell.count = count;
    cell.bounds.Extend(geo::LatLon{static_cast<double>(key.first) * cell_deg,
                                   static_cast<double>(key.second) * cell_deg});
    cell.bounds.Extend(
        geo::LatLon{static_cast<double>(key.first + 1) * cell_deg,
                    static_cast<double>(key.second + 1) * cell_deg});
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end(),
            [](const HotspotCell& a, const HotspotCell& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.cell_lat != b.cell_lat) return a.cell_lat < b.cell_lat;
              return a.cell_lon < b.cell_lon;
            });
  if (cells.size() > k) cells.resize(k);
  return cells;
}

StoreStats TrajectoryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace trajkit::store
