#include "store/hilbert.h"

namespace trajkit::store {
namespace {

/// One quadrant-rotation step of the classic iterative conversion
/// (Warren, "Hacker's Delight" variant): reflects/transposes (x, y) into
/// the canonical orientation of the sub-square selected by (rx, ry).
void Rotate(uint32_t side, uint32_t* x, uint32_t* y, uint32_t rx,
            uint32_t ry) {
  if (ry != 0) return;
  if (rx == 1) {
    *x = side - 1 - *x;
    *y = side - 1 - *y;
  }
  const uint32_t t = *x;
  *x = *y;
  *y = t;
}

}  // namespace

uint64_t HilbertDistance(uint32_t x, uint32_t y, int order) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCell(uint64_t d, int order, uint32_t* x, uint32_t* y) {
  uint32_t cx = 0;
  uint32_t cy = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < (1u << order); s <<= 1) {
    const uint32_t rx = static_cast<uint32_t>((t / 2) & 1);
    const uint32_t ry = static_cast<uint32_t>((t ^ rx) & 1);
    Rotate(s, &cx, &cy, rx, ry);
    cx += s * rx;
    cy += s * ry;
    t /= 4;
  }
  *x = cx;
  *y = cy;
}

}  // namespace trajkit::store
