#ifndef TRAJKIT_STORE_HILBERT_H_
#define TRAJKIT_STORE_HILBERT_H_

#include <cstdint>

namespace trajkit::store {

/// Order of the Hilbert grid used for bulk loading: the store's bounding
/// box is discretized into 2^16 x 2^16 cells, giving a 32-bit curve index.
inline constexpr int kHilbertOrder = 16;

/// Distance along the order-`order` Hilbert curve of grid cell (x, y).
/// x and y must be < 2^order. The curve visits every cell exactly once and
/// consecutive distances are grid neighbours, so sorting rectangles by the
/// curve distance of their centers clusters spatial neighbours into the
/// same R-tree leaves (Kamel & Faloutsos' Hilbert packing).
uint64_t HilbertDistance(uint32_t x, uint32_t y, int order = kHilbertOrder);

/// Inverse of HilbertDistance: the grid cell at distance `d` along the
/// order-`order` curve. Test hook for the bijection property.
void HilbertCell(uint64_t d, int order, uint32_t* x, uint32_t* y);

}  // namespace trajkit::store

#endif  // TRAJKIT_STORE_HILBERT_H_
