#include <cstring>
#include <string>

#include "common/csv.h"
#include "common/strings.h"
#include "store/trajectory_store.h"

// Segment log v1 (DESIGN.md §12): an 8-byte magic followed by one
// variable-length record per segment, little-endian, no padding. Readers
// consume records until end of file and tolerate a repeated magic at any
// record boundary, so `cat a.log b.log > c.log` is a valid merge.
//
//   magic   "TKSEGLG1"
//   record  session_id  i64
//           user_id     i32
//           day         i64
//           predicted_mode u8   (traj::Mode)
//           true_mode   u8
//           start_time  f64
//           end_time    f64
//           num_points  u32     (points seen, not points stored)
//           bbox        f64 x4  (min_lat max_lat min_lon max_lon)
//           num_features    u32, then f64 x num_features
//           stored_points   u32, then (lat f64, lon f64, ts f64, mode u8)
//
// Multi-byte values are raw host little-endian (the same assumption the
// FlatForest dump makes; asserted at compile time below).

namespace trajkit::store {
namespace {

static_assert(sizeof(double) == 8, "segment log assumes 8-byte doubles");

constexpr char kMagic[8] = {'T', 'K', 'S', 'E', 'G', 'L', 'G', '1'};

template <typename T>
void Append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

/// Sequential little-endian reader over an in-memory log image.
class LogReader {
 public:
  LogReader(const std::string& data, const std::string& path)
      : data_(data), path_(path) {}

  size_t remaining() const { return data_.size() - pos_; }

  template <typename T>
  Result<T> Read(const char* what) {
    if (remaining() < sizeof(T)) {
      return Status::ParseError(StrPrintf(
          "%s: truncated segment log: expected %zu bytes for %s at offset "
          "%zu, have %zu",
          path_.c_str(), sizeof(T), what, pos_, remaining()));
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Consumes the 8-byte magic. `required` distinguishes the mandatory
  /// leading header from optional mid-stream ones at concatenation seams.
  Result<bool> ReadMagic(bool required) {
    if (remaining() < sizeof(kMagic)) {
      if (required) {
        return Status::ParseError(path_ + ": not a segment log (too short)");
      }
      return false;
    }
    if (std::memcmp(data_.data() + pos_, kMagic, sizeof(kMagic)) != 0) {
      if (required) {
        return Status::ParseError(path_ +
                                  ": not a segment log (bad magic)");
      }
      return false;
    }
    pos_ += sizeof(kMagic);
    return true;
  }

 private:
  const std::string& data_;
  const std::string& path_;
  size_t pos_ = 0;
};

Result<StoredSegment> ReadSegment(LogReader& reader) {
  StoredSegment segment;
  TRAJKIT_ASSIGN_OR_RETURN(segment.session_id,
                           reader.Read<int64_t>("session_id"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.user_id, reader.Read<int32_t>("user_id"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.day, reader.Read<int64_t>("day"));
  TRAJKIT_ASSIGN_OR_RETURN(uint8_t predicted,
                           reader.Read<uint8_t>("predicted_mode"));
  TRAJKIT_ASSIGN_OR_RETURN(uint8_t annotated,
                           reader.Read<uint8_t>("true_mode"));
  if (predicted >= traj::kNumModes || annotated >= traj::kNumModes) {
    return Status::ParseError(
        StrPrintf("segment log mode out of range: %d/%d", predicted,
                  annotated));
  }
  segment.predicted_mode = static_cast<traj::Mode>(predicted);
  segment.true_mode = static_cast<traj::Mode>(annotated);
  TRAJKIT_ASSIGN_OR_RETURN(segment.start_time,
                           reader.Read<double>("start_time"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.end_time, reader.Read<double>("end_time"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.num_points,
                           reader.Read<uint32_t>("num_points"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.bbox.min_lat,
                           reader.Read<double>("bbox.min_lat"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.bbox.max_lat,
                           reader.Read<double>("bbox.max_lat"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.bbox.min_lon,
                           reader.Read<double>("bbox.min_lon"));
  TRAJKIT_ASSIGN_OR_RETURN(segment.bbox.max_lon,
                           reader.Read<double>("bbox.max_lon"));
  TRAJKIT_ASSIGN_OR_RETURN(uint32_t num_features,
                           reader.Read<uint32_t>("num_features"));
  if (static_cast<size_t>(num_features) * sizeof(double) >
      reader.remaining()) {
    return Status::ParseError(
        StrPrintf("truncated segment log: %u features declared", num_features));
  }
  segment.features.reserve(num_features);
  for (uint32_t i = 0; i < num_features; ++i) {
    TRAJKIT_ASSIGN_OR_RETURN(double v, reader.Read<double>("feature"));
    segment.features.push_back(v);
  }
  TRAJKIT_ASSIGN_OR_RETURN(uint32_t stored_points,
                           reader.Read<uint32_t>("stored_points"));
  if (static_cast<size_t>(stored_points) * (3 * sizeof(double) + 1) >
      reader.remaining()) {
    return Status::ParseError(StrPrintf(
        "truncated segment log: %u points declared", stored_points));
  }
  segment.points.reserve(stored_points);
  for (uint32_t i = 0; i < stored_points; ++i) {
    traj::TrajectoryPoint point;
    TRAJKIT_ASSIGN_OR_RETURN(point.pos.lat_deg, reader.Read<double>("lat"));
    TRAJKIT_ASSIGN_OR_RETURN(point.pos.lon_deg, reader.Read<double>("lon"));
    TRAJKIT_ASSIGN_OR_RETURN(point.timestamp,
                             reader.Read<double>("timestamp"));
    TRAJKIT_ASSIGN_OR_RETURN(uint8_t mode, reader.Read<uint8_t>("point mode"));
    if (mode >= traj::kNumModes) {
      return Status::ParseError("segment log point mode out of range");
    }
    point.mode = static_cast<traj::Mode>(mode);
    segment.points.push_back(point);
  }
  return segment;
}

}  // namespace

Status TrajectoryStore::SaveTo(const std::string& path) const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  std::lock_guard<std::mutex> lock(mu_);
  for (const StoredSegment& segment : segments_) {
    Append(out, segment.session_id);
    Append(out, segment.user_id);
    Append(out, segment.day);
    Append(out, static_cast<uint8_t>(segment.predicted_mode));
    Append(out, static_cast<uint8_t>(segment.true_mode));
    Append(out, segment.start_time);
    Append(out, segment.end_time);
    Append(out, segment.num_points);
    Append(out, segment.bbox.min_lat);
    Append(out, segment.bbox.max_lat);
    Append(out, segment.bbox.min_lon);
    Append(out, segment.bbox.max_lon);
    Append(out, static_cast<uint32_t>(segment.features.size()));
    for (const double v : segment.features) Append(out, v);
    Append(out, static_cast<uint32_t>(segment.points.size()));
    for (const traj::TrajectoryPoint& point : segment.points) {
      Append(out, point.pos.lat_deg);
      Append(out, point.pos.lon_deg);
      Append(out, point.timestamp);
      Append(out, static_cast<uint8_t>(point.mode));
    }
  }
  return WriteStringToFile(path, out);
}

Status TrajectoryStore::Load(const std::string& path) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  LogReader reader(data, path);
  TRAJKIT_ASSIGN_OR_RETURN(bool ok, reader.ReadMagic(/*required=*/true));
  (void)ok;
  // Parse the whole image before ingesting anything: a failed load leaves
  // the store exactly as it was.
  std::vector<StoredSegment> parsed;
  while (reader.remaining() > 0) {
    // A magic at a record boundary is a concatenation seam — skip it.
    TRAJKIT_ASSIGN_OR_RETURN(bool seam, reader.ReadMagic(/*required=*/false));
    if (seam) continue;
    if (reader.remaining() == 0) break;
    TRAJKIT_ASSIGN_OR_RETURN(StoredSegment segment, ReadSegment(reader));
    parsed.push_back(std::move(segment));
  }
  for (StoredSegment& segment : parsed) Ingest(std::move(segment));
  return Status::Ok();
}

}  // namespace trajkit::store
