#ifndef TRAJKIT_STORE_TRAJECTORY_STORE_H_
#define TRAJKIT_STORE_TRAJECTORY_STORE_H_

// The read side of the serving system: a historical trajectory store that
// ingests closed segments (MBR + time interval + predicted mode + the 70
// features + optional raw points), answers spatio-temporal queries from an
// in-memory bulk-loaded R-tree with per-mode inverted postings lists, and
// persists itself as an append-only binary segment log. DESIGN.md §12.
//
// Queries are validated against the brute-force oracles below (tests and
// the `micro_store` perf gate compare byte for byte), and every query path
// is instrumented: store.segments, store.query.latency_seconds,
// store.query.nodes_visited, store.query.postings_skipped.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "geo/geodesy.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"
#include "traj/types.h"

namespace trajkit::store {

/// Closed time interval [begin, end]; the default spans all of time. A
/// segment matches when its own [start_time, end_time] interval overlaps.
struct TimeRange {
  double begin = -std::numeric_limits<double>::infinity();
  double end = std::numeric_limits<double>::infinity();

  static TimeRange All() { return TimeRange{}; }

  bool Overlaps(double start_time, double end_time) const {
    return start_time <= end && begin <= end_time;
  }
};

/// Bit mask over traj::Mode (bit = enum value). Queries match segments
/// whose *predicted* mode bit is set.
using ModeMask = uint32_t;

inline constexpr ModeMask kAllModesMask = (1u << traj::kNumModes) - 1;

inline ModeMask MaskOf(traj::Mode mode) {
  return 1u << static_cast<uint32_t>(mode);
}

/// Parses a comma-separated mode list ("walk,bus") into a mask. The empty
/// string means all modes.
Result<ModeMask> ParseModeMask(std::string_view csv);

/// One persisted segment: what the serving plane knows about a closed
/// sub-trajectory once its prediction resolved.
struct StoredSegment {
  int64_t session_id = 0;
  int32_t user_id = 0;
  int64_t day = 0;
  /// The query key: the mode the serving plane predicted. Falls back to
  /// the annotated mode for segments that were never predicted (outside
  /// the label set, shed, or deadline-exceeded).
  traj::Mode predicted_mode = traj::Mode::kUnknown;
  /// The annotated ground-truth mode (kUnknown on live traffic).
  traj::Mode true_mode = traj::Mode::kUnknown;
  double start_time = 0.0;
  double end_time = 0.0;
  uint32_t num_points = 0;
  /// Minimum bounding rectangle of the segment's fixes.
  geo::BoundingBox bbox;
  /// The 70 trajectory features flushed at close time.
  std::vector<double> features;
  /// Raw fixes; only present when the session layer kept points.
  std::vector<traj::TrajectoryPoint> points;
};

/// Converts a closed segment from the session layer. `predicted_mode` is
/// the resolved prediction (pass `segment.mode` when none was made).
StoredSegment FromClosedSegment(const serve::ClosedSegment& segment,
                                traj::Mode predicted_mode);

/// One aggregation cell of TopKHotspots: grid coordinates (floor of the
/// MBR-center latitude/longitude divided by the cell size), the number of
/// matching segments whose center falls inside, and the cell's bounds.
struct HotspotCell {
  int64_t cell_lat = 0;
  int64_t cell_lon = 0;
  uint64_t count = 0;
  geo::BoundingBox bounds;

  friend bool operator==(const HotspotCell& a, const HotspotCell& b) {
    return a.cell_lat == b.cell_lat && a.cell_lon == b.cell_lon &&
           a.count == b.count;
  }
};

/// How the R-tree is packed from the segment MBRs.
enum class BulkLoadStrategy {
  /// Sort MBR centers along an order-16 Hilbert curve over the store's
  /// extent, pack consecutive runs into leaves (Kamel & Faloutsos).
  kHilbert,
  /// Sort-Tile-Recursive: slice by center longitude into vertical slabs,
  /// sort each slab by center latitude, pack (Leutenegger et al.).
  kStr,
};

struct TrajectoryStoreOptions {
  BulkLoadStrategy strategy = BulkLoadStrategy::kHilbert;
  /// Segment entries per leaf node.
  size_t leaf_fanout = 32;
  /// Child nodes per internal node.
  size_t fanout = 8;
  /// The postings fast path is taken when the segments selected by the
  /// query's mode mask are fewer than size() / postings_selectivity —
  /// scanning the (already mode-filtered) postings lists beats walking
  /// the tree. 0 disables the fast path.
  size_t postings_selectivity = 4;
};

/// Cumulative per-instance counters (mirrored into the global metrics
/// registry; kept here so tests can assert without global state).
struct StoreStats {
  size_t segments = 0;
  size_t bulk_loads = 0;
  size_t index_nodes = 0;
  size_t index_height = 0;
  size_t queries = 0;
  size_t nodes_visited = 0;
  /// Segments the postings fast path never had to examine (store size
  /// minus the postings entries actually scanned, summed over queries).
  size_t postings_skipped = 0;
};

/// In-memory spatio-temporal segment store. Thread-safe: Ingest holds an
/// exclusive lock; queries share the same mutex and lazily (re)build the
/// index when segments arrived since the last build, so readers always see
/// a consistent tree. All query results are deterministic functions of the
/// ingested multiset — identical at any worker-thread count — and are
/// returned in ascending segment-id order (id = ingest order).
class TrajectoryStore {
 public:
  explicit TrajectoryStore(TrajectoryStoreOptions options = {});

  /// Appends one segment; its id is the current size(). O(1) amortized —
  /// the spatial index is rebuilt lazily on the next query.
  void Ingest(StoredSegment segment);

  /// Convenience: a sink for SessionManager::set_closed_sink feeding this
  /// store directly from the session layer (predicted mode = annotated
  /// mode — no predictor in that pipeline).
  std::function<void(const serve::ClosedSegment&)> MakeSessionSink();

  size_t size() const;

  /// Copy of segment `id`. Precondition: id < size().
  StoredSegment Segment(uint32_t id) const;

  /// Segments whose MBR intersects `box`, whose time interval overlaps
  /// `time`, and whose predicted mode is in `mask`. Ascending ids.
  std::vector<uint32_t> QueryBBox(const geo::BoundingBox& box,
                                  const TimeRange& time = TimeRange::All(),
                                  ModeMask mask = kAllModesMask) const;

  /// Segments of `user_id` whose time interval overlaps `time`, ascending
  /// ids (which is also ascending close order).
  std::vector<uint32_t> QueryUser(int32_t user_id,
                                  const TimeRange& time = TimeRange::All())
      const;

  /// Top-k cells of a uniform `cell_deg`-degree grid by the number of
  /// matching segments whose MBR center falls inside; count descending,
  /// ties broken by (cell_lat, cell_lon) ascending. Precondition:
  /// cell_deg > 0.
  std::vector<HotspotCell> TopKHotspots(double cell_deg, size_t k,
                                        ModeMask mask = kAllModesMask) const;

  /// Brute-force oracles: linear scans with the exact same match and
  /// ordering semantics, no index involved. The correctness reference for
  /// tests, `trajkit query --oracle`, and the micro_store gate.
  std::vector<uint32_t> QueryBBoxBruteForce(
      const geo::BoundingBox& box, const TimeRange& time = TimeRange::All(),
      ModeMask mask = kAllModesMask) const;
  std::vector<uint32_t> QueryUserBruteForce(
      int32_t user_id, const TimeRange& time = TimeRange::All()) const;
  std::vector<HotspotCell> TopKHotspotsBruteForce(
      double cell_deg, size_t k, ModeMask mask = kAllModesMask) const;

  /// Forces the lazy index build now (bench hook; queries do this
  /// implicitly). No-op when the index is current.
  void BuildIndex();

  /// Writes every segment as an append-only binary log (store/segment
  /// log format v1, see DESIGN.md §12). Creates parent directories.
  Status SaveTo(const std::string& path) const;

  /// Ingests every segment of a log written by SaveTo (or the
  /// concatenation of several). Appends to whatever is already here, so
  /// loading two logs equals loading their concatenation.
  Status Load(const std::string& path);

  StoreStats stats() const;
  const TrajectoryStoreOptions& options() const { return options_; }

 private:
  /// One packed R-tree node. Internal nodes cover a contiguous child
  /// range; leaves cover a contiguous run of `order_` entries. Because
  /// packing is strictly sequential, every subtree also covers a
  /// contiguous `order_` run — [entry_begin, entry_end) — which lets a
  /// query emit a fully covered subtree without touching its segments.
  struct Node {
    double min_lat = 0.0, max_lat = 0.0, min_lon = 0.0, max_lon = 0.0;
    double t_min = 0.0, t_max = 0.0;
    ModeMask mask = 0;
    uint32_t begin = 0;  ///< First child (internal) / order_ entry (leaf).
    uint32_t end = 0;    ///< One past the last.
    uint32_t entry_begin = 0;  ///< Subtree's order_ run, first entry.
    uint32_t entry_end = 0;    ///< One past the subtree's last entry.
    bool leaf = false;
    /// True when every entry below has an initialized MBR. Segments with
    /// uninitialized boxes never match a bbox query, so only pure
    /// subtrees are eligible for the full-containment fast path.
    bool pure = true;
  };

  void BuildIndexLocked() const;
  std::vector<uint32_t> QueryBBoxLocked(const geo::BoundingBox& box,
                                        const TimeRange& time,
                                        ModeMask mask) const;
  std::vector<HotspotCell> TopKHotspotsScan(double cell_deg, size_t k,
                                            ModeMask mask) const;
  bool MatchesLocked(uint32_t id, const geo::BoundingBox& box,
                     const TimeRange& time, ModeMask mask) const;
  /// Same predicate over the columnar key arrays — the hot-path form used
  /// by the index walk and the postings scan (the oracles keep the row
  /// form so both implementations cross-check each other).
  bool MatchesColumnarLocked(uint32_t id, const geo::BoundingBox& box,
                             const TimeRange& time, ModeMask mask) const {
    return (seg_mask_[id] & mask) != 0 && seg_min_lat_[id] <= box.max_lat &&
           box.min_lat <= seg_max_lat_[id] && seg_min_lon_[id] <= box.max_lon &&
           box.min_lon <= seg_max_lon_[id] && seg_t_min_[id] <= time.end &&
           time.begin <= seg_t_max_[id];
  }

  TrajectoryStoreOptions options_;

  /// Process-wide instrumentation, resolved once at construction.
  obs::Counter& metric_segments_;
  obs::Counter& metric_bulk_loads_;
  obs::Counter& metric_queries_;
  obs::Counter& metric_nodes_visited_;
  obs::Counter& metric_postings_skipped_;
  obs::Gauge& metric_size_;
  obs::Gauge& metric_index_nodes_;
  obs::Histogram& metric_query_latency_;
  obs::Histogram& metric_bulk_load_seconds_;

  mutable std::mutex mu_;
  std::vector<StoredSegment> segments_;
  /// MBR centers, cached at ingest (hotspot + bulk-load input).
  std::vector<double> center_lat_;
  std::vector<double> center_lon_;
  /// Columnar copies of the per-segment match keys (MBR, time interval,
  /// mode bit), cached at ingest. The hot per-entry filter reads these
  /// instead of the fat StoredSegment rows — the rows drag feature and
  /// point vectors through the cache. Uninitialized MBRs are stored as an
  /// inverted sentinel interval so every overlap test fails, matching
  /// BoxesOverlap on the row form.
  std::vector<double> seg_min_lat_, seg_max_lat_;
  std::vector<double> seg_min_lon_, seg_max_lon_;
  std::vector<double> seg_t_min_, seg_t_max_;
  std::vector<ModeMask> seg_mask_;
  /// Per-predicted-mode inverted postings: ascending segment ids.
  std::vector<std::vector<uint32_t>> postings_;
  /// Per-user segment ids, ascending.
  std::map<int32_t, std::vector<uint32_t>> by_user_;
  /// R-tree: segment ids in packed leaf order, then the node pool with
  /// the root last. Valid when !dirty_. Mutable: const queries rebuild
  /// lazily and count into stats_, all under mu_.
  mutable std::vector<uint32_t> order_;
  mutable std::vector<Node> nodes_;
  mutable size_t height_ = 0;
  mutable bool dirty_ = false;
  mutable StoreStats stats_;
};

}  // namespace trajkit::store

#endif  // TRAJKIT_STORE_TRAJECTORY_STORE_H_
