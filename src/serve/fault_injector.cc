#include "serve/fault_injector.h"

#include <string>
#include <vector>

#include "common/strings.h"

namespace trajkit::serve {
namespace {

Status BadSpec(std::string_view spec, const std::string& why) {
  return Status::InvalidArgument(
      StrPrintf("fault_spec '%.*s': %s", static_cast<int>(spec.size()),
                spec.data(), why.c_str()));
}

Result<double> ParseProbability(std::string_view value) {
  TRAJKIT_ASSIGN_OR_RETURN(const double p, ParseDouble(value));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        StrPrintf("probability %g outside [0, 1]", p));
  }
  return p;
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(std::string_view spec) {
  FaultSpec parsed;
  for (const std::string_view clause : SplitString(spec, ';')) {
    if (clause.empty()) continue;
    // "seed=N" is a bare key=value clause; faults are "name:key=value,...".
    const size_t colon = clause.find(':');
    const std::string_view name =
        colon == std::string_view::npos ? clause.substr(0, clause.find('='))
                                        : clause.substr(0, colon);
    if (name == "seed") {
      const size_t eq = clause.find('=');
      if (eq == std::string_view::npos) {
        return BadSpec(spec, "seed needs a value (seed=N)");
      }
      auto seed = ParseInt64(clause.substr(eq + 1));
      if (!seed.ok()) return BadSpec(spec, seed.status().message());
      parsed.seed = static_cast<uint64_t>(seed.value());
      continue;
    }
    if (colon == std::string_view::npos) {
      return BadSpec(spec, "clause '" + std::string(clause) +
                               "' is missing its key list (name:k=v,...)");
    }
    double* p = nullptr;
    double* latency_ms = nullptr;
    if (name == "swap_stall") {
      p = &parsed.swap_stall_p;
      latency_ms = &parsed.swap_stall_latency_ms;
    } else if (name == "predict_fail") {
      p = &parsed.predict_fail_p;
    } else if (name == "batch_delay") {
      p = &parsed.batch_delay_p;
      latency_ms = &parsed.batch_delay_latency_ms;
    } else {
      return BadSpec(spec, "unknown fault '" + std::string(name) + "'");
    }
    for (const std::string_view pair :
         SplitString(clause.substr(colon + 1), ',')) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return BadSpec(spec, "key '" + std::string(pair) + "' has no value");
      }
      const std::string_view key = pair.substr(0, eq);
      const std::string_view value = pair.substr(eq + 1);
      if (key == "p") {
        auto probability = ParseProbability(value);
        if (!probability.ok()) return BadSpec(spec,
                                              probability.status().message());
        *p = probability.value();
      } else if (key == "latency_ms" && latency_ms != nullptr) {
        auto parsed_latency = ParseDouble(value);
        if (!parsed_latency.ok()) {
          return BadSpec(spec, parsed_latency.status().message());
        }
        if (parsed_latency.value() < 0.0) {
          return BadSpec(spec, "latency_ms must be >= 0");
        }
        *latency_ms = parsed_latency.value();
      } else {
        return BadSpec(spec, "unknown key '" + std::string(key) + "' for '" +
                                 std::string(name) + "'");
      }
    }
  }
  return parsed;
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec),
      metric_swap_stall_(obs::MetricsRegistry::Global().GetCounter(
          "serve.faults.injected.swap_stall")),
      metric_predict_fail_(obs::MetricsRegistry::Global().GetCounter(
          "serve.faults.injected.predict_fail")),
      metric_batch_delay_(obs::MetricsRegistry::Global().GetCounter(
          "serve.faults.injected.batch_delay")),
      rng_(spec.seed) {}

FaultInjector::BatchFaults FaultInjector::Next() {
  BatchFaults faults;
  if (!enabled()) return faults;
  std::lock_guard<std::mutex> lock(mu_);
  // Draw all three every call so the stream stays aligned whatever subset
  // of faults a spec enables.
  const bool stall = rng_.NextBernoulli(spec_.swap_stall_p);
  const bool fail = rng_.NextBernoulli(spec_.predict_fail_p);
  const bool delay = rng_.NextBernoulli(spec_.batch_delay_p);
  if (stall) {
    faults.stall_registry = true;
    faults.delay_seconds += spec_.swap_stall_latency_ms * 1e-3;
    metric_swap_stall_.Increment();
  }
  if (fail) {
    faults.fail_predict = true;
    metric_predict_fail_.Increment();
  }
  if (delay) {
    faults.delay_seconds += spec_.batch_delay_latency_ms * 1e-3;
    metric_batch_delay_.Increment();
  }
  return faults;
}

}  // namespace trajkit::serve
