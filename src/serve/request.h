#ifndef TRAJKIT_SERVE_REQUEST_H_
#define TRAJKIT_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

namespace trajkit::serve {

/// Per-request serving context, carried alongside the feature payload:
/// how long the caller will wait, how important the answer is, which
/// session it belongs to, and how many resubmissions it has left.
struct RequestContext {
  /// Absolute point after which the answer is worthless; requests whose
  /// deadline passes while queued resolve with Status::DeadlineExceeded
  /// instead of occupying a batch slot. The default (time_point::max())
  /// means "no deadline".
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Higher values survive load shedding longer; under a full queue the
  /// lowest-priority request is shed first.
  int priority = 0;
  /// Session the request belongs to (diagnostics; not used for routing).
  int64_t session_id = 0;
  /// Resubmissions the caller still intends to make. The predictor treats
  /// a transient failure differently depending on this: > 0 resolves with
  /// the retryable error (the caller will resubmit, see common/retry.h);
  /// 0 falls back to the degraded cheap path when one is configured.
  int retry_budget = 0;
  /// Request-scoped trace id (obs/request_trace.h). 0 = untraced; when
  /// tracing is enabled and the caller leaves it 0, Submit() mints one.
  /// Callers that resubmit (retries) or mint upstream (session close)
  /// set it so all hops of one logical request share a single trace.
  uint64_t trace_id = 0;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Seconds until the deadline relative to `now` (negative = expired).
  double RemainingSeconds(std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration<double>(deadline - now).count();
  }

  /// Context expiring `seconds` from now (measured at the call).
  static RequestContext WithTimeout(double seconds) {
    RequestContext context;
    context.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    return context;
  }
};

/// One prediction request: a full-width feature vector plus its context.
struct PredictRequest {
  std::vector<double> features;
  RequestContext context;

  PredictRequest() = default;
  explicit PredictRequest(std::vector<double> features_in,
                          RequestContext context_in = {})
      : features(std::move(features_in)), context(context_in) {}
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_REQUEST_H_
