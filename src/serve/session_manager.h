#ifndef TRAJKIT_SERVE_SESSION_MANAGER_H_
#define TRAJKIT_SERVE_SESSION_MANAGER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <string_view>
#include <vector>

#include "geo/geodesy.h"
#include "obs/metrics.h"
#include "serve/streaming_features.h"
#include "traj/segmentation.h"
#include "traj/types.h"

namespace trajkit::serve {

/// Configuration of the per-user streaming sessions. The segment-close
/// rules mirror `traj::SegmentationOptions` field-for-field so that a
/// replayed stream closes exactly the segments the offline pipeline cuts;
/// the extra knobs (max-window, idle eviction, session cap) bound memory
/// for long-running service with millions of sessions.
struct SessionOptions {
  /// Segments closed with fewer points are discarded (paper §3.2).
  int min_points = 10;
  /// Close the open segment when the (UTC) day changes.
  bool split_on_day = true;
  /// Close the open segment when the annotated mode changes (replay of
  /// labelled corpora; live traffic carries kUnknown throughout).
  bool split_on_mode = true;
  /// Close when the gap to the previous fix exceeds this many seconds;
  /// <= 0 disables gap splitting.
  double max_gap_seconds = 0.0;
  /// Discard closed segments whose mode is kUnknown.
  bool drop_unlabeled = true;
  /// Max-window rule: force-close an open segment once it holds this many
  /// points, bounding the per-session buffers. 0 = unbounded (offline
  /// parity mode).
  size_t max_segment_points = 0;
  /// EvictIdle() closes sessions whose last fix is older than this many
  /// seconds; <= 0 disables idle eviction.
  double idle_after_seconds = 1800.0;
  /// Hard cap on concurrently open sessions; beyond it the
  /// least-recently-updated session is flushed and evicted. 0 = unbounded.
  size_t max_sessions = 0;
  /// Retain the raw points of emitted segments (tests / debugging; off in
  /// production to keep closed segments small).
  bool keep_points = false;
  /// Shard index when this manager is one shard of a ServingPlane; >= 0
  /// additionally mirrors the session counters under
  /// "serve.shard<i>.sessions.*" so statusz and the CI shard-determinism
  /// matrix can attribute load per shard. -1 (default) = unsharded.
  int shard = -1;
  /// Forwarded to the streaming feature extractor.
  traj::PointFeatureOptions point_features;
};

/// Why a segment was closed.
enum class CloseReason {
  kModeChange,
  kDayBoundary,
  kTimeGap,
  kMaxWindow,
  kIdle,
  kSessionCap,
  kFlush,
};

/// Stable lower-case name of a CloseReason ("mode_change", ...).
std::string_view CloseReasonToString(CloseReason reason);

/// One finished sub-trajectory emitted by the session layer, carrying the
/// flushed 70-dim feature vector — the unit of work handed to prediction.
struct ClosedSegment {
  int64_t session_id = 0;
  int user_id = 0;
  int64_t day = 0;
  traj::Mode mode = traj::Mode::kUnknown;
  double start_time = 0.0;
  double end_time = 0.0;
  size_t num_points = 0;
  CloseReason reason = CloseReason::kFlush;
  /// Request trace id minted at close time when tracing is enabled
  /// (obs/request_trace.h); 0 otherwise. Replay propagates it into the
  /// PredictRequest so segment close and prediction share one trace.
  uint64_t trace_id = 0;
  /// Minimum bounding rectangle of the segment's kept fixes, tracked
  /// incrementally at ingest (store/trajectory_store.h indexes it).
  geo::BoundingBox bbox;
  /// The 70 trajectory features (bit-identical to the batch extractor).
  std::vector<double> features;
  /// Raw points; populated only when SessionOptions::keep_points.
  std::vector<traj::TrajectoryPoint> points;
};

/// Counters of one SessionManager's lifetime.
struct SessionManagerStats {
  size_t points_ingested = 0;
  size_t points_dropped_out_of_order = 0;
  size_t segments_emitted = 0;
  size_t segments_discarded_short = 0;
  size_t segments_discarded_unlabeled = 0;
  size_t sessions_evicted_idle = 0;
  size_t sessions_evicted_cap = 0;
};

/// Per-user streaming sessions: points are ingested one at a time, open
/// segments are closed incrementally by the offline segmentation rules
/// (mode change / day boundary / time gap) plus the serving-only max-window
/// rule, and memory stays bounded via the idle-eviction policy and the
/// LRU session cap. Single-writer: callers serialize Ingest/Evict/Flush
/// (shard across SessionManagers to scale writers; prediction is where the
/// shared thread pool parallelism lives).
class SessionManager {
 public:
  explicit SessionManager(SessionOptions options = {});

  /// Ingests one fix for `session_id`. At most one boundary-closed segment
  /// plus one cap-evicted segment are appended to `closed`. Out-of-order
  /// fixes (timestamp before the session's last kept fix) are dropped,
  /// mirroring the offline cleaner.
  void Ingest(int64_t session_id, const traj::TrajectoryPoint& point,
              std::vector<ClosedSegment>* closed);

  /// Closes and evicts every session idle longer than
  /// `idle_after_seconds` relative to `now`, appending the flushed
  /// segments (ascending session id — deterministic). No-op when idle
  /// eviction is disabled.
  void EvictIdle(double now, std::vector<ClosedSegment>* closed);

  /// Closes every open segment (ascending session id) and drops all
  /// sessions — end-of-stream / shutdown.
  void FlushAll(std::vector<ClosedSegment>* closed);

  /// Ascending ids of all open sessions.
  std::vector<int64_t> OpenSessionIds() const;

  /// Ascending ids of sessions idle longer than `idle_after_seconds` at
  /// `now`. Empty when idle eviction is disabled.
  std::vector<int64_t> IdleSessionIds(double now) const;

  /// Closes `session_id`'s open segment as `reason` and erases the session
  /// (with eviction bookkeeping for kIdle / kSessionCap). No-op for
  /// unknown ids. EvictIdle/FlushAll are built on this; a ServingPlane
  /// calls it directly to interleave closes across shards in globally
  /// ascending session-id order — the exact one-manager close order, which
  /// is what keeps replay output byte-identical at any shard count.
  void CloseSession(int64_t session_id, CloseReason reason,
                    std::vector<ClosedSegment>* closed);

  /// Installs an observer invoked (synchronously, after the segment is
  /// appended to `closed`) for every emitted segment — the hook the
  /// trajectory store ingests through. Replaces any previous sink; pass
  /// an empty function to detach.
  void set_closed_sink(std::function<void(const ClosedSegment&)> sink) {
    closed_sink_ = std::move(sink);
  }

  size_t num_open_sessions() const { return sessions_.size(); }
  const SessionManagerStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }

 private:
  struct Session {
    StreamingFeatureExtractor extractor;
    std::vector<traj::TrajectoryPoint> points;  // keep_points only.
    geo::BoundingBox bbox;  // MBR of the open segment's kept fixes.
    int64_t day = 0;
    traj::Mode mode = traj::Mode::kUnknown;
    double start_time = 0.0;
    double last_time = 0.0;
    bool has_last = false;  // Any fix kept since the session was created.
    size_t count = 0;       // Points in the open segment (0 = none open).
    std::list<int64_t>::iterator lru;
  };

  /// Flushes the open segment of `session` (if any) as `reason`, applying
  /// the min-point and unlabeled filters, and resets it for the next one.
  void CloseSegment(int64_t session_id, Session* session, CloseReason reason,
                    std::vector<ClosedSegment>* closed);

  /// Updates the active-session gauge: the per-shard one when sharded
  /// (the ServingPlane owns the aggregate then), the global one otherwise.
  void SetActiveGauges();

  SessionOptions options_;
  SessionManagerStats stats_;
  std::function<void(const ClosedSegment&)> closed_sink_;
  /// Process-wide mirrors of stats_ (serve.sessions.* counters, the
  /// serve.sessions.active gauge, and one serve.sessions.closed.<reason>
  /// counter per CloseReason), resolved once at construction. stats_ stays
  /// per-instance; the metrics aggregate across all managers.
  obs::Counter& metric_points_;
  obs::Counter& metric_out_of_order_;
  obs::Counter& metric_emitted_;
  obs::Counter& metric_discarded_short_;
  obs::Counter& metric_discarded_unlabeled_;
  obs::Counter& metric_evicted_idle_;
  obs::Counter& metric_evicted_cap_;
  obs::Gauge& metric_active_;
  std::array<obs::Counter*, 7> metric_closed_by_reason_;
  /// Per-shard mirrors (serve.shard<i>.sessions.*), resolved only when
  /// SessionOptions::shard >= 0; null otherwise. The unshard-labelled
  /// metrics above stay the cross-shard aggregate.
  obs::Counter* shard_points_ = nullptr;
  obs::Counter* shard_emitted_ = nullptr;
  obs::Counter* shard_evicted_idle_ = nullptr;
  obs::Counter* shard_evicted_cap_ = nullptr;
  obs::Gauge* shard_active_ = nullptr;
  /// Ordered map: deterministic iteration for eviction and flush.
  std::map<int64_t, Session> sessions_;
  /// Recency list, most recently updated first.
  std::list<int64_t> lru_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_SESSION_MANAGER_H_
