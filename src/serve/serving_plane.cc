#include "serve/serving_plane.h"

#include <algorithm>
#include <utility>

namespace trajkit::serve {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash so consecutive user ids
/// spread evenly instead of striping across shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ServingPlane::ServingPlane(const ModelRegistry* registry,
                           ServingPlaneOptions options)
    : metric_active_(
          obs::MetricsRegistry::Global().GetGauge("serve.sessions.active")) {
  const size_t shards = std::max<size_t>(1, options.shards);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    SessionOptions session = options.session;
    session.shard = static_cast<int>(s);
    BatchPredictorOptions batching = options.batching;
    batching.shard = static_cast<int>(s);
    shards_.push_back(std::make_unique<Shard>(registry, session, batching));
  }
}

size_t ServingPlane::ShardOf(int64_t user_id) const {
  return static_cast<size_t>(Mix64(static_cast<uint64_t>(user_id)) %
                             shards_.size());
}

void ServingPlane::Ingest(int64_t user_id,
                          const traj::TrajectoryPoint& point,
                          std::vector<ClosedSegment>* closed) {
  shards_[ShardOf(user_id)]->sessions.Ingest(user_id, point, closed);
  SetActiveGauge();
}

void ServingPlane::EvictIdle(double now,
                             std::vector<ClosedSegment>* closed) {
  // Merge the per-shard idle sets into one globally ascending session-id
  // pass — the exact close order of a single unsharded manager. Ids are
  // unique across shards (a user routes to exactly one), so a plain sort
  // of (id, shard) pairs is a stable interleaving.
  std::vector<std::pair<int64_t, size_t>> idle;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (int64_t session_id : shards_[s]->sessions.IdleSessionIds(now)) {
      idle.emplace_back(session_id, s);
    }
  }
  std::sort(idle.begin(), idle.end());
  for (const auto& [session_id, s] : idle) {
    shards_[s]->sessions.CloseSession(session_id, CloseReason::kIdle, closed);
  }
  SetActiveGauge();
}

void ServingPlane::FlushAll(std::vector<ClosedSegment>* closed) {
  std::vector<std::pair<int64_t, size_t>> open;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (int64_t session_id : shards_[s]->sessions.OpenSessionIds()) {
      open.emplace_back(session_id, s);
    }
  }
  std::sort(open.begin(), open.end());
  for (const auto& [session_id, s] : open) {
    shards_[s]->sessions.CloseSession(session_id, CloseReason::kFlush,
                                      closed);
  }
  SetActiveGauge();
}

std::future<Result<Prediction>> ServingPlane::Submit(int64_t user_id,
                                                     PredictRequest request) {
  return shards_[ShardOf(user_id)]->predictor.Submit(std::move(request));
}

void ServingPlane::FlushPredictors() {
  for (auto& shard : shards_) shard->predictor.Flush();
}

void ServingPlane::set_closed_sink(
    std::function<void(const ClosedSegment&)> sink) {
  for (auto& shard : shards_) shard->sessions.set_closed_sink(sink);
}

size_t ServingPlane::num_open_sessions() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->sessions.num_open_sessions();
  }
  return total;
}

SessionManagerStats ServingPlane::session_stats() const {
  SessionManagerStats total;
  for (const auto& shard : shards_) {
    const SessionManagerStats& stats = shard->sessions.stats();
    total.points_ingested += stats.points_ingested;
    total.points_dropped_out_of_order += stats.points_dropped_out_of_order;
    total.segments_emitted += stats.segments_emitted;
    total.segments_discarded_short += stats.segments_discarded_short;
    total.segments_discarded_unlabeled += stats.segments_discarded_unlabeled;
    total.sessions_evicted_idle += stats.sessions_evicted_idle;
    total.sessions_evicted_cap += stats.sessions_evicted_cap;
  }
  return total;
}

BatchPredictor::Counters ServingPlane::predictor_counters() const {
  BatchPredictor::Counters total;
  for (const auto& shard : shards_) {
    const BatchPredictor::Counters counters = shard->predictor.counters();
    total.requests += counters.requests;
    total.batches += counters.batches;
    total.max_batch = std::max(total.max_batch, counters.max_batch);
    total.shed += counters.shed;
    total.deadline_exceeded += counters.deadline_exceeded;
    total.degraded += counters.degraded;
    total.unavailable += counters.unavailable;
  }
  return total;
}

void ServingPlane::SetActiveGauge() {
  metric_active_.Set(static_cast<double>(num_open_sessions()));
}

}  // namespace trajkit::serve
