#ifndef TRAJKIT_SERVE_STATUSZ_H_
#define TRAJKIT_SERVE_STATUSZ_H_

// The /statusz-style text status page of the serving stack: one screen
// answering "what is this server doing right now" — active model
// version, queue depth, lifecycle counters (shed / degraded / faults),
// latency quantiles with their exemplar trace ids, and the last K
// tail-kept request traces from the flight recorder. Rendered from the
// metrics registry + request tracer, so it works in any process that
// serves (the `trajkit statusz` subcommand renders it after a synthetic
// replay; a long-running server would render it on demand).

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace trajkit::serve {

struct StatusPageOptions {
  /// How many of the most recent tail-kept traces to list.
  size_t max_retained_traces = 8;
  /// Live telemetry sources: recent history sparklines and the SLO
  /// section render "(no data)" when these are absent.
  const obs::TimeSeriesStore* timeseries = nullptr;
  const obs::SloEngine* slo = nullptr;
  /// How many trailing ticks a sparkline covers.
  size_t sparkline_ticks = 32;
};

/// Unicode block-character sparkline of `values` (empty -> ""). All-equal
/// inputs render as the lowest block so a flat line reads as flat.
/// Exposed for the statusz golden test.
std::string Sparkline(const std::vector<double>& values);

/// Renders the status page from `metrics` + `tracer`. Every section
/// always renders; subsystems that have emitted nothing show a stable
/// "(no data)" placeholder (lookups never create metrics).
std::string RenderStatusPage(const obs::MetricsRegistry& metrics,
                             const obs::RequestTracer& tracer,
                             const StatusPageOptions& options = {});

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_STATUSZ_H_
