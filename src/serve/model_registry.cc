#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/csv.h"
#include "common/strings.h"
#include "ml/flat_forest.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace trajkit::serve {

const char* DegradationLevelToString(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone:
      return "none";
    case DegradationLevel::kPreviousModel:
      return "previous_model";
    case DegradationLevel::kMajorityClass:
      return "majority_class";
  }
  return "unknown";
}

Status ServingModel::Validate() const {
  if (version.empty()) {
    return Status::InvalidArgument("serving model needs a non-empty version");
  }
  if (!forest.fitted()) {
    return Status::FailedPrecondition("serving model '" + version +
                                      "' holds an unfitted forest");
  }
  if (num_input_features <= 0) {
    return Status::InvalidArgument("num_input_features must be positive");
  }
  std::vector<bool> seen(static_cast<size_t>(num_input_features), false);
  for (const int index : feature_subset) {
    if (index < 0 || index >= num_input_features) {
      return Status::InvalidArgument(StrPrintf(
          "feature-subset index %d out of range [0, %d)", index,
          num_input_features));
    }
    if (seen[static_cast<size_t>(index)]) {
      return Status::InvalidArgument(
          StrPrintf("duplicate feature-subset index %d", index));
    }
    seen[static_cast<size_t>(index)] = true;
  }
  const size_t effective = EffectiveFeatureCount();
  if (forest.FeatureImportances().size() != effective) {
    return Status::InvalidArgument(StrPrintf(
        "forest was trained on %zu features but the subset selects %zu",
        forest.FeatureImportances().size(), effective));
  }
  if (norm_mins.size() != norm_maxs.size()) {
    return Status::InvalidArgument("normalizer min/max widths differ");
  }
  if (!norm_mins.empty() && norm_mins.size() != effective) {
    return Status::InvalidArgument(StrPrintf(
        "normalizer width %zu != effective feature count %zu",
        norm_mins.size(), effective));
  }
  return Status::Ok();
}

Result<ml::Matrix> ServingModel::PrepareBatch(
    const std::vector<std::vector<double>>& rows) const {
  const size_t effective = EffectiveFeatureCount();
  ml::Matrix prepared(rows.size(), effective);
  for (size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double>& row = rows[r];
    if (row.size() != static_cast<size_t>(num_input_features)) {
      return Status::InvalidArgument(StrPrintf(
          "feature vector %zu has %zu values, model '%s' expects %d",
          r, row.size(), version.c_str(), num_input_features));
    }
    const std::span<double> out = prepared.MutableRow(r);
    if (feature_subset.empty()) {
      std::copy(row.begin(), row.end(), out.begin());
    } else {
      for (size_t c = 0; c < feature_subset.size(); ++c) {
        out[c] = row[static_cast<size_t>(feature_subset[c])];
      }
    }
  }
  // Min-max normalization with the published ranges, replicating
  // MinMaxScaler::Transform (constant columns map to 0, no clamping).
  if (!norm_mins.empty()) {
    for (size_t c = 0; c < effective; ++c) {
      const double range = norm_maxs[c] - norm_mins[c];
      if (range <= 0.0) {
        for (size_t r = 0; r < prepared.rows(); ++r) prepared(r, c) = 0.0;
      } else {
        const double inv = 1.0 / range;
        for (size_t r = 0; r < prepared.rows(); ++r) {
          prepared(r, c) = (prepared(r, c) - norm_mins[c]) * inv;
        }
      }
    }
  }
  return prepared;
}

Result<std::vector<Prediction>> ServingModel::PredictBatch(
    const std::vector<std::vector<double>>& rows) const {
  if (rows.empty()) return std::vector<Prediction>{};
  TRAJKIT_ASSIGN_OR_RETURN(ml::Matrix prepared, PrepareBatch(rows));
  // Labels come from Predict (not an argmax over PredictProba) so serving
  // answers are bit-identical to the offline pipeline's predictions.
  const std::vector<int> labels = forest.Predict(prepared);
  TRAJKIT_ASSIGN_OR_RETURN(ml::Matrix probabilities,
                           forest.PredictProba(prepared));
  std::vector<Prediction> out(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    out[r].label = labels[r];
    const std::span<const double> row = probabilities.Row(r);
    out[r].probabilities.assign(row.begin(), row.end());
    out[r].model_version = version;
  }
  return out;
}

Result<Prediction> ServingModel::PredictOne(
    std::span<const double> features) const {
  std::vector<std::vector<double>> rows(1);
  rows[0].assign(features.begin(), features.end());
  TRAJKIT_ASSIGN_OR_RETURN(std::vector<Prediction> predictions,
                           PredictBatch(rows));
  return std::move(predictions.front());
}

Result<ServingModel> MakeServingModel(std::string version,
                                      ml::RandomForest forest,
                                      int num_input_features,
                                      std::vector<int> feature_subset,
                                      std::vector<double> norm_mins,
                                      std::vector<double> norm_maxs) {
  ServingModel model;
  model.version = std::move(version);
  model.forest = std::move(forest);
  model.num_input_features = num_input_features;
  model.feature_subset = std::move(feature_subset);
  model.norm_mins = std::move(norm_mins);
  model.norm_maxs = std::move(norm_maxs);
  TRAJKIT_RETURN_IF_ERROR(model.Validate());
  return model;
}

Result<std::vector<int>> LoadFig3FeatureSubset(const std::string& path,
                                               std::string_view method,
                                               int top_k) {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  TRAJKIT_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, CsvOptions{}));
  const int method_col = table.ColumnIndex("method");
  const int k_col = table.ColumnIndex("k");
  const int feature_col = table.ColumnIndex("feature");
  if (method_col < 0 || k_col < 0 || feature_col < 0) {
    return Status::ParseError(
        "feature-selection CSV needs method,k,feature columns (the "
        "exp_fig3_feature_selection output format)");
  }
  std::vector<std::pair<long long, std::string>> picks;
  for (const std::vector<std::string>& row : table.rows) {
    if (row[static_cast<size_t>(method_col)] != method) continue;
    TRAJKIT_ASSIGN_OR_RETURN(long long k,
                             ParseInt64(row[static_cast<size_t>(k_col)]));
    picks.emplace_back(k, row[static_cast<size_t>(feature_col)]);
  }
  if (picks.empty()) {
    return Status::NotFound("no rows for method '" + std::string(method) +
                            "' in " + path);
  }
  std::sort(picks.begin(), picks.end());
  if (picks.size() < static_cast<size_t>(top_k)) {
    return Status::InvalidArgument(StrPrintf(
        "asked for top %d features but '%s' only ranks %zu", top_k,
        std::string(method).c_str(), picks.size()));
  }
  std::vector<int> subset;
  subset.reserve(static_cast<size_t>(top_k));
  for (int i = 0; i < top_k; ++i) {
    TRAJKIT_ASSIGN_OR_RETURN(
        int index, traj::TrajectoryFeatureExtractor::FeatureIndex(
                       picks[static_cast<size_t>(i)].second));
    subset.push_back(index);
  }
  return subset;
}

const char* ModelRoleToString(ModelRole role) {
  switch (role) {
    case ModelRole::kActive:
      return "active";
    case ModelRole::kShadow:
      return "shadow";
  }
  return "unknown";
}

Status ModelRegistry::Register(ServingModel model) {
  TRAJKIT_RETURN_IF_ERROR(model.Validate());
  // Lower the forest into its flat inference form before the model becomes
  // visible, so serving always runs the compiled path — including right
  // after a hot swap — and never pays the compile on a request thread.
  // Deserialized models arrive uncompiled; models compiled by the caller
  // (e.g. with quantization) are kept as-is.
  if (model.forest.flat() == nullptr) {
    TRAJKIT_RETURN_IF_ERROR(model.forest.CompileFlat());
  }
  auto shared = std::make_shared<const ServingModel>(std::move(model));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = models_.emplace(shared->version, shared);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("model version '" + shared->version +
                                   "' is already registered");
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.registry.models")
      .Set(static_cast<double>(models_.size()));
  return Status::Ok();
}

Status ModelRegistry::Publish(ServingModel model, ModelRole role) {
  const std::string version = model.version;
  TRAJKIT_RETURN_IF_ERROR(Register(std::move(model)));
  return Publish(version, role);
}

Status ModelRegistry::Publish(std::string_view version, ModelRole role) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(version);
  if (it == models_.end()) {
    return Status::NotFound("no registered model with version '" +
                            std::string(version) + "'");
  }
  if (role == ModelRole::kShadow) {
    // The shadow scores the exact rows the active model serves, so the two
    // must agree on the full-width input contract.
    if (active_ != nullptr &&
        it->second->num_input_features != active_->num_input_features) {
      return Status::InvalidArgument(StrPrintf(
          "shadow model '%s' consumes %d input features but active '%s' "
          "consumes %d",
          it->second->version.c_str(), it->second->num_input_features,
          active_->version.c_str(), active_->num_input_features));
    }
    shadow_ = it->second;
    ++seq_;
    obs::MetricsRegistry::Global()
        .GetCounter("serve.registry.shadow_installs")
        .Increment();
    obs::MetricsRegistry::Global().SetInfo("serve.registry.shadow_version",
                                           shadow_->version);
    AppendAuditLocked("publish_shadow", shadow_->version, "");
    return Status::Ok();
  }
  if (active_ != nullptr && active_ != it->second) last_good_ = active_;
  active_ = it->second;
  ++seq_;
  // Swap count + active version for dashboards: every activation (including
  // the first) is a swap event; the version is an info metric so the string
  // survives into the JSON/Prometheus artifacts.
  obs::MetricsRegistry::Global().GetCounter("serve.registry.swaps")
      .Increment();
  ExportActiveMetricsLocked();
  AppendAuditLocked("publish_active", active_->version, "");
  // Process-scoped trace landmark: a hot swap shows up on the timeline
  // next to the request spans it may have affected.
  obs::RequestTracer::Global().RecordGlobalInstant("registry_swap");
  return Status::Ok();
}

Status ModelRegistry::PromoteShadow(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ == nullptr) {
    return Status::FailedPrecondition("no shadow model to promote");
  }
  last_good_ = active_;
  active_ = shadow_;
  shadow_ = nullptr;
  ++seq_;
  obs::MetricsRegistry::Global().GetCounter("serve.registry.swaps")
      .Increment();
  obs::MetricsRegistry::Global()
      .GetCounter("serve.registry.promotions")
      .Increment();
  obs::MetricsRegistry::Global().SetInfo("serve.registry.shadow_version", "");
  ExportActiveMetricsLocked();
  AppendAuditLocked("promote", active_->version, reason);
  obs::RequestTracer::Global().RecordGlobalInstant("registry_promotion");
  return Status::Ok();
}

Status ModelRegistry::RetireShadow(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ == nullptr) {
    return Status::FailedPrecondition("no shadow model to retire");
  }
  const std::shared_ptr<const ServingModel> retired = std::move(shadow_);
  ++seq_;
  // Rejected candidates don't accumulate: drop the registration too,
  // unless the same model still serves another slot.
  if (retired != active_ && retired != last_good_) {
    models_.erase(retired->version);
    obs::MetricsRegistry::Global()
        .GetGauge("serve.registry.models")
        .Set(static_cast<double>(models_.size()));
  }
  obs::MetricsRegistry::Global()
      .GetCounter("serve.registry.shadow_retired")
      .Increment();
  obs::MetricsRegistry::Global().SetInfo("serve.registry.shadow_version", "");
  AppendAuditLocked("retire_shadow", retired->version, reason);
  return Status::Ok();
}

ModelLease ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  ModelLease lease;
  lease.active = active_;
  lease.last_good = last_good_;
  lease.shadow = shadow_;
  lease.seq = seq_;
  return lease;
}

std::vector<RegistryAuditEvent> ModelRegistry::AuditTrail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RegistryAuditEvent>(audit_.begin(), audit_.end());
}

void ModelRegistry::AppendAuditLocked(std::string_view event,
                                      std::string_view version,
                                      std::string_view detail) {
  static constexpr size_t kAuditCapacity = 64;
  static constexpr size_t kAuditInfoTail = 8;
  RegistryAuditEvent entry;
  entry.seq = seq_;
  entry.event = std::string(event);
  entry.version = std::string(version);
  entry.detail = std::string(detail);
  audit_.push_back(std::move(entry));
  while (audit_.size() > kAuditCapacity) audit_.pop_front();
  // Mirror the tail into an info metric so the audit trail survives into
  // the metrics artifacts and statusz without a registry handle.
  std::string rendered;
  const size_t start =
      audit_.size() > kAuditInfoTail ? audit_.size() - kAuditInfoTail : 0;
  for (size_t i = start; i < audit_.size(); ++i) {
    const RegistryAuditEvent& e = audit_[i];
    if (!rendered.empty()) rendered += " | ";
    rendered += StrPrintf("#%llu %s %s",
                          static_cast<unsigned long long>(e.seq),
                          e.event.c_str(), e.version.c_str());
    if (!e.detail.empty()) rendered += " (" + e.detail + ")";
  }
  obs::MetricsRegistry::Global().SetInfo("serve.registry.audit", rendered);
}

void ModelRegistry::ExportActiveMetricsLocked() {
  obs::MetricsRegistry::Global().SetInfo("serve.registry.active_version",
                                         active_->version);
  // Shape of the active model's compiled inference form, for statusz and
  // dashboards (Register guarantees flat() is set for registered models).
  if (const ml::FlatForest* flat = active_->forest.flat()) {
    const ml::FlatForestStats stats = flat->Stats();
    obs::MetricsRegistry::Global()
        .GetGauge("serve.registry.flat_nodes")
        .Set(static_cast<double>(stats.num_nodes));
    obs::MetricsRegistry::Global()
        .GetGauge("serve.registry.flat_quantized")
        .Set(stats.quantized ? 1.0 : 0.0);
  }
}

std::shared_ptr<const ServingModel> ModelRegistry::Get(
    std::string_view version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(version);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::Versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> versions;
  versions.reserve(models_.size());
  for (const auto& [version, model] : models_) versions.push_back(version);
  return versions;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace trajkit::serve
