#ifndef TRAJKIT_SERVE_SERVE_CONFIG_H_
#define TRAJKIT_SERVE_SERVE_CONFIG_H_

// One shared flag surface for every serving entry point. `serve-replay`,
// `statusz`, and `micro_serve` used to each hand-roll the same dozen
// flags with drifting defaults; ParseServeFlags collapses them into a
// validated ServeConfig (invalid values or combinations come back as
// InvalidArgument naming the offending flag). Entry points differ only in
// their ServeConfigDefaults.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "common/flags.h"
#include "common/result.h"
#include "obs/slo.h"
#include "serve/batch_predictor.h"
#include "serve/continuous_training.h"
#include "serve/fault_injector.h"
#include "serve/replay.h"
#include "serve/serving_plane.h"

namespace trajkit::serve {

/// Per-entry-point defaults. Values are what the entry point used before
/// the consolidation, so flagless invocations behave identically.
struct ServeConfigDefaults {
  int users = 20;
  int days = 4;
  uint64_t seed = 7;
  int trees = 15;
  size_t batch = 64;
  double max_delay_ms = 2.0;
  size_t max_queue = 0;
  size_t shards = 1;
  double gap_seconds = 0.0;
  size_t max_window = 0;
  double deadline_ms = 0.0;
  int retries = 0;
  /// Default chaos spec; non-empty = chaos on unless --fault_spec=
  /// (empty value) disables it.
  std::string fault_spec;
};

ServeConfigDefaults ServeReplayDefaults();
ServeConfigDefaults StatuszDefaults();
ServeConfigDefaults MicroServeDefaults();

/// The --continuous_training flag family (all require the main switch).
struct ContinuousTrainingConfig {
  bool enabled = false;
  size_t step_every = 16;     ///< --step_every
  size_t refit_every = 48;    ///< --refit_every
  size_t min_fit = 48;        ///< --min_fit
  size_t min_shadow = 32;     ///< --min_shadow (promotion window samples)
  double promote_epsilon = 0.0;  ///< --promote_epsilon
  double cost_budget = 4.0;   ///< --cost_budget (flat node-count ratio)
  int trees = 15;             ///< --ct_trees (candidate forest size)
  uint64_t seed = 42;         ///< --ct_seed (candidate seed base)
  size_t buffer = 4096;       ///< --ct_buffer (labeled-example capacity)
  size_t drift_window = 128;  ///< --drift_window
  double drift_threshold = 8.0;      ///< --drift_threshold (baseline sigmas)
  double drift_degraded_rate = 0.0;  ///< --drift_degraded_rate (0 = off)

  ContinuousTrainingOptions MakeOptions() const;
};

/// Validated serving configuration shared by the three entry points.
struct ServeConfig {
  // Synthetic-corpus + training shape (entry points that generate/train).
  int users = 20;
  int days = 4;
  uint64_t seed = 7;
  int trees = 15;

  // Batching + admission.
  size_t batch = 64;
  double max_delay_seconds = 0.002;
  size_t max_queue = 0;

  // Plane + session layer.
  size_t shards = 1;
  double gap_seconds = 0.0;
  size_t max_window = 0;

  // Request lifecycle.
  double deadline_seconds = 0.0;
  int retries = 0;

  // Chaos. `fault_spec` is parsed from `fault_spec_text` (empty = off);
  // the FaultInjector itself is built by the caller so its lifetime can
  // outlive the plane.
  std::string fault_spec_text;
  std::optional<FaultSpec> fault_spec;

  // Telemetry plane. `slo_specs` is parsed from `slo_spec_text`; the
  // TimeSeriesStore / SloEngine / HttpExportServer themselves are built
  // by the caller (their lifetimes span the replay).
  int http_port = -1;        ///< --http_port: -1 = no server, 0 = ephemeral.
  bool http_linger = false;  ///< --http_linger: serve until /quitquitquit.
  std::string slo_spec_text;
  std::vector<obs::SloSpec> slo_specs;
  size_t timeseries_capacity = 512;  ///< --timeseries_capacity
  size_t tick_every = 64;            ///< --tick_every (segments per tick)

  /// True when any telemetry surface was requested (ticks are armed).
  bool telemetry_enabled() const {
    return http_port >= 0 || !slo_specs.empty();
  }

  ContinuousTrainingConfig ct;

  /// Batching options (fault injector / label prior / shadow evaluator
  /// are wired by the caller).
  BatchPredictorOptions MakeBatchingOptions() const;
  /// Plane options embedding MakeBatchingOptions().
  ServingPlaneOptions MakePlaneOptions() const;
  /// Replay options (closed_sink / trainer are wired by the caller).
  ReplayOptions MakeReplayOptions() const;
};

/// Parses + validates the shared serving flags against an entry point's
/// defaults. Errors are InvalidArgument naming the offending flag (e.g.
/// "--shards must be >= 1" or "--refit_every requires
/// --continuous_training").
Result<ServeConfig> ParseServeFlags(const Flags& flags,
                                    const ServeConfigDefaults& defaults);

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_SERVE_CONFIG_H_
