#include "serve/continuous_training.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "ml/dataset.h"
#include "ml/matrix.h"
#include "obs/metrics.h"
#include "traj/trajectory_features.h"

namespace trajkit::serve {

namespace {

obs::Counter& CtCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// Deterministic serving-cost proxy for the promotion policy: compiled
/// node counts instead of measured latency, so verdicts can't flip on
/// wall-clock noise. 1.0 when either side is missing its flat form.
double NodeCostRatio(const ModelLease& lease) {
  if (lease.active == nullptr || lease.shadow == nullptr) return 1.0;
  const ml::FlatForest* active_flat = lease.active->forest.flat();
  const ml::FlatForest* shadow_flat = lease.shadow->forest.flat();
  if (active_flat == nullptr || shadow_flat == nullptr) return 1.0;
  const size_t active_nodes = active_flat->num_nodes();
  if (active_nodes == 0) return 1.0;
  return static_cast<double>(shadow_flat->num_nodes()) /
         static_cast<double>(active_nodes);
}

}  // namespace

ContinuousTrainer::ContinuousTrainer(ModelRegistry* registry,
                                     core::LabelSet labels,
                                     ContinuousTrainingOptions options)
    : registry_(registry),
      labels_(std::move(labels)),
      options_(std::move(options)) {
  if (options_.refit_every < options_.step_every) {
    options_.refit_every = options_.step_every;
  }
  if (options_.buffer_capacity < options_.min_fit_samples) {
    options_.buffer_capacity = options_.min_fit_samples;
  }
}

ContinuousTrainer::~ContinuousTrainer() {
  if (fit_.valid()) fit_.get();
}

void ContinuousTrainer::ObserveSegment(const ClosedSegment& segment,
                                       int true_class) {
  if (true_class < 0 || true_class >= labels_.num_classes()) return;
  LabeledExample example;
  example.features = segment.features;
  example.label = true_class;

  // Drift baseline: Welford over the first drift.window examples, then
  // frozen — the "what the world looked like at startup" sketch.
  if (options_.drift.enabled && baseline_count_ < options_.drift.window) {
    if (baseline_mean_.empty()) {
      baseline_mean_.assign(example.features.size(), 0.0);
      baseline_m2_.assign(example.features.size(), 0.0);
    }
    if (baseline_mean_.size() == example.features.size()) {
      ++baseline_count_;
      for (size_t f = 0; f < example.features.size(); ++f) {
        const double x = example.features[f];
        const double delta = x - baseline_mean_[f];
        baseline_mean_[f] += delta / static_cast<double>(baseline_count_);
        baseline_m2_[f] += delta * (x - baseline_mean_[f]);
      }
    }
  }

  buffer_.push_back(std::move(example));
  while (buffer_.size() > options_.buffer_capacity) buffer_.pop_front();
  ++labeled_since_step_;
  ++labeled_since_fit_;
  ++stats_.segments_observed;
  CtCounter("serve.ct.segments_observed").Increment();
  obs::MetricsRegistry::Global()
      .GetGauge("serve.ct.buffer_size")
      .Set(static_cast<double>(buffer_.size()));
}

void ContinuousTrainer::OnResult(int true_class,
                                 const Prediction& prediction) {
  ++window_results_;
  if (prediction.degradation != DegradationLevel::kNone) ++window_degraded_;
  if (prediction.shadow_label >= 0) {
    evaluator_.ObserveOutcome(prediction.shadow_version, true_class,
                              prediction.label, prediction.shadow_label);
  }
}

bool ContinuousTrainer::StepDue() const {
  return labeled_since_step_ >= options_.step_every;
}

Status ContinuousTrainer::Step() { return StepImpl(/*allow_refit=*/true); }

Status ContinuousTrainer::Finish() { return StepImpl(/*allow_refit=*/false); }

Status ContinuousTrainer::StepImpl(bool allow_refit) {
  labeled_since_step_ = 0;
  ++stats_.steps;
  CtCounter("serve.ct.steps").Increment();

  // 1. Join the refit launched at an earlier barrier and publish it as
  // the shadow candidate. Blocking here (instead of polling readiness) is
  // what keeps installs replay-step-deterministic: the install point
  // depends on the corpus position, never on how fast the fit ran.
  if (fit_.valid()) {
    Result<ServingModel> candidate = fit_.get();
    ++stats_.refits_completed;
    if (!candidate.ok()) {
      ++stats_.fit_failures;
      CtCounter("serve.ct.fit_failures").Increment();
    } else {
      const std::string version = candidate->version;
      const Status published =
          registry_->Publish(std::move(candidate).value(), ModelRole::kShadow);
      if (!published.ok()) {
        // A rejected publish (e.g. input-width mismatch) is a failed
        // candidate, not a trainer error: the active model keeps serving.
        ++stats_.fit_failures;
        CtCounter("serve.ct.fit_failures").Increment();
      } else {
        ++stats_.shadows_installed;
        evaluator_.StartWindow(version, NodeCostRatio(registry_->Acquire()));
      }
    }
  }

  // 2. Verdict on a matured shadow window.
  const ModelLease lease = registry_->Acquire();
  if (lease.shadow != nullptr) {
    const ShadowEvaluator::WindowStats window = evaluator_.window();
    if (window.open && window.version == lease.shadow->version &&
        window.labeled >= options_.promotion.min_samples) {
      const double delta = window.accuracy_delta();
      if (delta >= options_.promotion.min_accuracy_delta &&
          window.cost_ratio <= options_.promotion.max_cost_ratio) {
        TRAJKIT_RETURN_IF_ERROR(registry_->PromoteShadow(StrPrintf(
            "accuracy_delta=%+.4f cost_ratio=%.2f labeled=%zu", delta,
            window.cost_ratio, window.labeled)));
        ++stats_.promotions;
      } else {
        const std::string reason =
            window.cost_ratio > options_.promotion.max_cost_ratio
                ? StrPrintf("cost_ratio=%.2f > budget %.2f",
                            window.cost_ratio,
                            options_.promotion.max_cost_ratio)
                : StrPrintf("accuracy_delta=%+.4f < %+.4f over %zu labeled",
                            delta, options_.promotion.min_accuracy_delta,
                            window.labeled);
        TRAJKIT_RETURN_IF_ERROR(registry_->RetireShadow(reason));
        ++stats_.rejections;
        CtCounter("serve.ct.rejections").Increment();
      }
      evaluator_.EndWindow();
    }
  }

  if (allow_refit) {
    CheckDrift();
    // 3. Kick the next refit once enough fresh labels arrived (or drift
    // demanded one early) and the previous candidate has been resolved —
    // at most one candidate in flight or in shadow at a time.
    const bool due =
        labeled_since_fit_ >= options_.refit_every || drift_pending_;
    const bool shadow_busy = registry_->Acquire().shadow != nullptr;
    if (due && !shadow_busy && !fit_.valid() &&
        buffer_.size() >= options_.min_fit_samples) {
      LaunchRefit();
      drift_pending_ = false;
    }
  }

  window_results_ = 0;
  window_degraded_ = 0;
  return Status::Ok();
}

void ContinuousTrainer::LaunchRefit() {
  auto snapshot = std::make_shared<std::vector<LabeledExample>>(
      buffer_.begin(), buffer_.end());
  const std::string version =
      options_.version_prefix + std::to_string(next_version_++);
  ml::RandomForestParams params = options_.forest;
  // Distinct but deterministic forests per refit.
  params.seed = options_.forest.seed + stats_.refits_launched;
  std::vector<std::string> class_names = labels_.class_names();
  ++stats_.refits_launched;
  labeled_since_fit_ = 0;
  CtCounter("serve.ct.refits").Increment();

  // The closure owns everything it reads except compile_scratch_, which
  // is safe because fits never overlap (Step joins before the next kick).
  ml::FlatForestScratch* scratch = &compile_scratch_;
  fit_ = std::async(
      std::launch::async,
      [snapshot = std::move(snapshot), version, params,
       class_names = std::move(class_names),
       scratch]() -> Result<ServingModel> {
        const size_t n = snapshot->size();
        if (n == 0) {
          return Status::FailedPrecondition("refit with an empty buffer");
        }
        const size_t width = (*snapshot)[0].features.size();
        ml::Matrix features(n, width);
        std::vector<int> labels(n);
        for (size_t i = 0; i < n; ++i) {
          const LabeledExample& example = (*snapshot)[i];
          if (example.features.size() != width) {
            return Status::InvalidArgument(StrPrintf(
                "buffered example %zu has %zu features, expected %zu", i,
                example.features.size(), width));
          }
          std::copy(example.features.begin(), example.features.end(),
                    features.MutableRow(i).begin());
          labels[i] = example.label;
        }
        const std::vector<std::string>& canonical =
            traj::TrajectoryFeatureExtractor::FeatureNames();
        std::vector<std::string> feature_names;
        if (canonical.size() == width) {
          feature_names = canonical;
        } else {
          feature_names.reserve(width);
          for (size_t f = 0; f < width; ++f) {
            feature_names.push_back(StrPrintf("f%zu", f));
          }
        }
        TRAJKIT_ASSIGN_OR_RETURN(
            ml::Dataset dataset,
            ml::Dataset::Create(std::move(features), std::move(labels), {},
                                std::move(feature_names),
                                std::move(class_names)));
        ml::RandomForest forest(params);
        TRAJKIT_RETURN_IF_ERROR(forest.Fit(dataset));
        // Compile the flat inference form here, off the serving path,
        // reusing the trainer's scratch so periodic refits don't rebuild
        // the dedup/BFS workspaces (Register would otherwise compile
        // from scratch).
        TRAJKIT_RETURN_IF_ERROR(
            forest.CompileFlat(ml::FlatForestOptions{}, scratch));
        return MakeServingModel(version, std::move(forest),
                                static_cast<int>(width));
      });
}

void ContinuousTrainer::CheckDrift() {
  if (!options_.drift.enabled) return;
  bool triggered = false;

  // Feature-distribution sketch: current-window mean vs frozen baseline,
  // in baseline standard deviations.
  if (baseline_count_ >= options_.drift.window &&
      buffer_.size() >= options_.drift.window && !baseline_mean_.empty()) {
    const size_t window = options_.drift.window;
    const size_t width = baseline_mean_.size();
    std::vector<double> current(width, 0.0);
    size_t counted = 0;
    for (size_t i = buffer_.size() - window; i < buffer_.size(); ++i) {
      if (buffer_[i].features.size() != width) continue;
      ++counted;
      for (size_t f = 0; f < width; ++f) current[f] += buffer_[i].features[f];
    }
    if (counted > 0) {
      double score = 0.0;
      const double denom_n = static_cast<double>(baseline_count_);
      for (size_t f = 0; f < width; ++f) {
        const double mean = current[f] / static_cast<double>(counted);
        const double variance = baseline_m2_[f] / denom_n;
        const double sigma = std::sqrt(std::max(variance, 0.0)) + 1e-9;
        score = std::max(score, std::abs(mean - baseline_mean_[f]) / sigma);
      }
      obs::MetricsRegistry::Global()
          .GetGauge("serve.ct.drift_score")
          .Set(score);
      if (score > options_.drift.threshold) {
        triggered = true;
        // Re-anchor the baseline on the shifted window so one sustained
        // shift fires once, not at every barrier forever.
        baseline_count_ = 0;
        baseline_mean_.clear();
        baseline_m2_.clear();
        for (size_t i = buffer_.size() - window; i < buffer_.size(); ++i) {
          if (buffer_[i].features.size() != width) continue;
          if (baseline_mean_.empty()) {
            baseline_mean_.assign(width, 0.0);
            baseline_m2_.assign(width, 0.0);
          }
          ++baseline_count_;
          for (size_t f = 0; f < width; ++f) {
            const double x = buffer_[i].features[f];
            const double delta = x - baseline_mean_[f];
            baseline_mean_[f] += delta / static_cast<double>(baseline_count_);
            baseline_m2_[f] += delta * (x - baseline_mean_[f]);
          }
        }
      }
    }
  }

  // Degradation-rung rate: a serving plane mostly answering off the
  // fallback chain is a model-health signal, not just an infra one.
  if (options_.drift.max_degraded_rate > 0.0 && window_results_ >= 16) {
    const double rate = static_cast<double>(window_degraded_) /
                        static_cast<double>(window_results_);
    if (rate > options_.drift.max_degraded_rate) triggered = true;
  }

  if (triggered) {
    drift_pending_ = true;
    ++stats_.drift_triggers;
    CtCounter("serve.ct.drift_triggers").Increment();
  }
}

}  // namespace trajkit::serve
