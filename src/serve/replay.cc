#include "serve/replay.h"

#include <future>
#include <queue>
#include <utility>

#include "common/stopwatch.h"
#include "obs/request_trace.h"
#include "serve/continuous_training.h"

namespace trajkit::serve {
namespace {

/// A cursor into one trajectory, ordered by its current point's timestamp
/// (earliest first; ties broken by trajectory index for determinism).
struct Cursor {
  double timestamp;
  size_t trajectory;
  size_t point;
};

struct CursorLater {
  bool operator()(const Cursor& a, const Cursor& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
    return a.trajectory > b.trajectory;
  }
};

}  // namespace

Result<ReplayReport> ReplayCorpus(const std::vector<traj::Trajectory>& corpus,
                                  const core::LabelSet& labels,
                                  ServingPlane& plane,
                                  const ReplayOptions& options) {
  ReplayReport report;

  // K-way merge: pop the cursor with the earliest current point, advance
  // it. A user's own fixes are never reordered — out-of-order fixes inside
  // a trajectory reach the session in file order and are dropped there,
  // exactly like the offline cleaner.
  std::priority_queue<Cursor, std::vector<Cursor>, CursorLater> merge;
  for (size_t t = 0; t < corpus.size(); ++t) {
    if (!corpus[t].points.empty()) {
      merge.push(Cursor{corpus[t].points[0].timestamp, t, 0});
    }
  }

  // One submitted request; `features` is retained only while the request
  // still has retry budget (a resubmission needs the payload again).
  struct InFlight {
    int true_class = -1;
    int budget = 0;
    /// Routing key: resubmits must land on the same user's shard.
    int64_t user_id = 0;
    uint64_t trace_id = 0;
    /// Index into `staged` when a closed sink is installed; -1 otherwise.
    ptrdiff_t staged = -1;
    std::vector<double> features;
    std::future<Result<Prediction>> future;
  };
  const auto make_context = [&options] {
    RequestContext context;
    if (options.deadline_seconds > 0.0) {
      context = RequestContext::WithTimeout(options.deadline_seconds);
    }
    context.priority = options.priority;
    context.retry_budget = options.retry_budget;
    return context;
  };

  std::vector<ClosedSegment> closed;
  std::vector<InFlight> in_flight;
  // Staged copies of every closed segment (close order) plus the class the
  // predictor eventually answered, delivered to options.closed_sink after
  // the gather phase — sinks never slow the ingest loop.
  std::vector<ClosedSegment> staged;
  std::vector<int> staged_pred;
  const auto submit_closed = [&] {
    for (ClosedSegment& segment : closed) {
      ++report.segments_closed;
      ptrdiff_t staged_index = -1;
      if (options.closed_sink) {
        staged_index = static_cast<ptrdiff_t>(staged.size());
        staged.push_back(segment);  // Copy: features are moved out below.
        staged_pred.push_back(-1);
      }
      const int true_class = labels.ClassOf(segment.mode);
      if (true_class < 0) {
        ++report.segments_outside_label_set;
        continue;
      }
      // The trainer buffers the labeled example before the features are
      // moved into the request below.
      if (options.trainer != nullptr) {
        options.trainer->ObserveSegment(segment, true_class);
      }
      InFlight item;
      item.true_class = true_class;
      item.budget = options.retry_budget;
      item.user_id = segment.user_id;
      item.trace_id = segment.trace_id;
      item.staged = staged_index;
      if (item.budget > 0) item.features = segment.features;
      RequestContext context = make_context();
      // Propagate the trace minted at segment close, so the session hop
      // and the prediction hop share one request trace.
      context.trace_id = segment.trace_id;
      item.future = plane.Submit(
          item.user_id, PredictRequest(std::move(segment.features), context));
      in_flight.push_back(std::move(item));
    }
    closed.clear();
  };

  // Drains every in-flight request, gathering in rounds: transient
  // failures with remaining budget are resubmitted (one backoff delay per
  // round, shared by that round's retries). Budgets strictly decrease, so
  // each drain terminates after at most retry_budget rounds. Runs once at
  // end of stream — and, with a continuous trainer installed, at every
  // trainer step barrier, so the trainer only ever mutates the registry
  // while nothing is in flight (the determinism contract).
  Backoff backoff(options.retry, options.retry_seed);
  const auto drain = [&]() -> Status {
    std::vector<InFlight> round = std::move(in_flight);
    in_flight.clear();
    while (!round.empty()) {
      plane.FlushPredictors();
      std::vector<InFlight> next;
      for (InFlight& item : round) {
        Result<Prediction> result = item.future.get();
        if (result.ok()) {
          const Prediction& prediction = result.value();
          if (prediction.degradation != DegradationLevel::kNone) {
            ++report.degraded;
            if (prediction.degradation == DegradationLevel::kPreviousModel) {
              ++report.degraded_previous_model;
            } else if (prediction.degradation ==
                       DegradationLevel::kMajorityClass) {
              ++report.degraded_majority_class;
            }
          }
          ++report.segments_evaluated;
          report.y_true.push_back(item.true_class);
          report.y_pred.push_back(prediction.label);
          if (prediction.label == item.true_class) ++report.correct;
          if (item.staged >= 0) staged_pred[item.staged] = prediction.label;
          if (options.trainer != nullptr) {
            options.trainer->OnResult(item.true_class, prediction);
          }
          continue;
        }
        const Status& status = result.status();
        if (status.code() == StatusCode::kDeadlineExceeded) {
          ++report.deadline_exceeded;
          continue;
        }
        if (status.code() == StatusCode::kResourceExhausted) {
          ++report.shed;
          continue;
        }
        if (IsRetryableStatus(status) && item.budget > 0) {
          --item.budget;
          ++report.retries;
          obs::RequestTracer& tracer = obs::RequestTracer::Global();
          if (tracer.enabled() && item.trace_id != 0) {
            tracer.RecordInstant(item.trace_id, "retry",
                                 obs::TracePhase::kRetry, tracer.NowNs(),
                                 static_cast<uint64_t>(item.budget));
          }
          RequestContext context = make_context();
          context.retry_budget = item.budget;
          // The resubmission continues the same logical request: same
          // trace.
          context.trace_id = item.trace_id;
          // Keep the payload only while further retries are still
          // possible.
          std::vector<double> features;
          if (item.budget > 0) {
            features = item.features;
          } else {
            features = std::move(item.features);
          }
          item.future = plane.Submit(
              item.user_id, PredictRequest(std::move(features), context));
          next.push_back(std::move(item));
          continue;
        }
        return status;
      }
      if (!next.empty()) SleepForSeconds(backoff.NextDelaySeconds());
      round = std::move(next);
    }
    return Status::Ok();
  };

  // Next segment count at which a telemetry tick barrier fires.
  size_t next_tick =
      options.tick && options.tick_every_segments > 0
          ? options.tick_every_segments
          : 0;

  Stopwatch ingest_timer;
  while (!merge.empty()) {
    Cursor cursor = merge.top();
    merge.pop();
    const traj::Trajectory& trajectory = corpus[cursor.trajectory];
    const traj::TrajectoryPoint& point = trajectory.points[cursor.point];
    plane.Ingest(trajectory.user_id, point, &closed);
    ++report.points;
    if (options.evict_every_points > 0 &&
        report.points % options.evict_every_points == 0) {
      plane.EvictIdle(point.timestamp, &closed);
    }
    if (!closed.empty()) submit_closed();
    // Trainer step barrier: the step count is a pure function of the
    // corpus (labeled segments observed), and the registry only mutates
    // after every already-submitted request has resolved — which model
    // answers which request cannot depend on thread/shard timing.
    if (options.trainer != nullptr && options.trainer->StepDue()) {
      TRAJKIT_RETURN_IF_ERROR(drain());
      TRAJKIT_RETURN_IF_ERROR(options.trainer->Step());
    }
    // Telemetry tick barrier: like the trainer step, the tick position is
    // a pure function of the corpus (segments closed so far), and the
    // store only samples after every in-flight request has resolved. A
    // burst of closes can make several ticks due at once; each fires, so
    // the tick count never depends on batching.
    while (next_tick > 0 && report.segments_closed >= next_tick) {
      TRAJKIT_RETURN_IF_ERROR(drain());
      options.tick();
      next_tick += options.tick_every_segments;
    }
    if (cursor.point + 1 < trajectory.points.size()) {
      merge.push(Cursor{trajectory.points[cursor.point + 1].timestamp,
                        cursor.trajectory, cursor.point + 1});
    }
  }
  plane.FlushAll(&closed);
  submit_closed();
  report.ingest_seconds = ingest_timer.ElapsedSeconds();

  TRAJKIT_RETURN_IF_ERROR(drain());
  if (options.trainer != nullptr) {
    TRAJKIT_RETURN_IF_ERROR(options.trainer->Finish());
  }
  // Final telemetry tick: the closing window covers the stream's tail
  // (and any trainer Finish() mutations) regardless of cadence phase.
  if (options.tick) options.tick();
  if (options.closed_sink) {
    for (size_t i = 0; i < staged.size(); ++i) {
      options.closed_sink(staged[i], staged_pred[i]);
    }
  }
  report.session_stats = plane.session_stats();
  return report;
}

}  // namespace trajkit::serve
