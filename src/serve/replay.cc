#include "serve/replay.h"

#include <future>
#include <queue>
#include <utility>

#include "common/stopwatch.h"

namespace trajkit::serve {
namespace {

/// A cursor into one trajectory, ordered by its current point's timestamp
/// (earliest first; ties broken by trajectory index for determinism).
struct Cursor {
  double timestamp;
  size_t trajectory;
  size_t point;
};

struct CursorLater {
  bool operator()(const Cursor& a, const Cursor& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
    return a.trajectory > b.trajectory;
  }
};

}  // namespace

Result<ReplayReport> ReplayCorpus(const std::vector<traj::Trajectory>& corpus,
                                  const core::LabelSet& labels,
                                  BatchPredictor& predictor,
                                  const ReplayOptions& options) {
  ReplayReport report;
  SessionManager sessions(options.session);

  // K-way merge: pop the cursor with the earliest current point, advance
  // it. A user's own fixes are never reordered — out-of-order fixes inside
  // a trajectory reach the session in file order and are dropped there,
  // exactly like the offline cleaner.
  std::priority_queue<Cursor, std::vector<Cursor>, CursorLater> merge;
  for (size_t t = 0; t < corpus.size(); ++t) {
    if (!corpus[t].points.empty()) {
      merge.push(Cursor{corpus[t].points[0].timestamp, t, 0});
    }
  }

  std::vector<ClosedSegment> closed;
  std::vector<std::pair<int, std::future<Result<Prediction>>>> in_flight;
  const auto submit_closed = [&] {
    for (ClosedSegment& segment : closed) {
      ++report.segments_closed;
      const int true_class = labels.ClassOf(segment.mode);
      if (true_class < 0) {
        ++report.segments_outside_label_set;
        continue;
      }
      in_flight.emplace_back(true_class,
                             predictor.Submit(std::move(segment.features)));
    }
    closed.clear();
  };

  Stopwatch ingest_timer;
  while (!merge.empty()) {
    Cursor cursor = merge.top();
    merge.pop();
    const traj::Trajectory& trajectory = corpus[cursor.trajectory];
    const traj::TrajectoryPoint& point = trajectory.points[cursor.point];
    sessions.Ingest(trajectory.user_id, point, &closed);
    ++report.points;
    if (options.evict_every_points > 0 &&
        report.points % options.evict_every_points == 0) {
      sessions.EvictIdle(point.timestamp, &closed);
    }
    if (!closed.empty()) submit_closed();
    if (cursor.point + 1 < trajectory.points.size()) {
      merge.push(Cursor{trajectory.points[cursor.point + 1].timestamp,
                        cursor.trajectory, cursor.point + 1});
    }
  }
  sessions.FlushAll(&closed);
  submit_closed();
  report.ingest_seconds = ingest_timer.ElapsedSeconds();

  predictor.Flush();
  for (auto& [true_class, future] : in_flight) {
    TRAJKIT_ASSIGN_OR_RETURN(Prediction prediction, future.get());
    ++report.segments_evaluated;
    report.y_true.push_back(true_class);
    report.y_pred.push_back(prediction.label);
    if (prediction.label == true_class) ++report.correct;
  }
  report.session_stats = sessions.stats();
  return report;
}

}  // namespace trajkit::serve
