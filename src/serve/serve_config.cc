#include "serve/serve_config.h"

#include <utility>

#include "common/strings.h"

namespace trajkit::serve {
namespace {

/// One bounds check -> InvalidArgument naming the flag.
Status RequireAtLeast(long long value, long long floor, const char* flag) {
  if (value < floor) {
    return Status::InvalidArgument(StrPrintf(
        "--%s must be >= %lld (got %lld)", flag, floor, value));
  }
  return Status::Ok();
}

Status RequireNonNegative(double value, const char* flag) {
  if (value < 0.0) {
    return Status::InvalidArgument(
        StrPrintf("--%s must be >= 0 (got %g)", flag, value));
  }
  return Status::Ok();
}

}  // namespace

ServeConfigDefaults ServeReplayDefaults() {
  // Historic serve-replay defaults: unbounded queue, single shard, no
  // deadline/retries/chaos; synthetic fallback corpus is 20 users x 4
  // days.
  ServeConfigDefaults defaults;
  return defaults;
}

ServeConfigDefaults StatuszDefaults() {
  // Historic statusz demo defaults: a small chaotic sharded run whose
  // artifacts exercise every section of the page.
  ServeConfigDefaults defaults;
  defaults.users = 6;
  defaults.days = 2;
  defaults.batch = 16;
  defaults.max_delay_ms = 1.0;
  defaults.max_queue = 32;
  defaults.shards = 2;
  defaults.deadline_ms = 50.0;
  defaults.retries = 1;
  defaults.fault_spec =
      "swap_stall:p=0.15,latency_ms=2;predict_fail:p=0.15;"
      "batch_delay:p=0.2,latency_ms=1;seed=11";
  return defaults;
}

ServeConfigDefaults MicroServeDefaults() {
  // Historic micro_serve defaults: 30 users x 4 days, a 50-tree forest,
  // no chaos.
  ServeConfigDefaults defaults;
  defaults.users = 30;
  defaults.days = 4;
  defaults.trees = 50;
  return defaults;
}

ContinuousTrainingOptions ContinuousTrainingConfig::MakeOptions() const {
  ContinuousTrainingOptions options;
  options.step_every = step_every;
  options.refit_every = refit_every;
  options.min_fit_samples = min_fit;
  options.buffer_capacity = buffer;
  options.forest.n_estimators = trees;
  options.forest.seed = seed;
  options.promotion.min_samples = min_shadow;
  options.promotion.min_accuracy_delta = promote_epsilon;
  options.promotion.max_cost_ratio = cost_budget;
  options.drift.window = drift_window;
  options.drift.threshold = drift_threshold;
  options.drift.max_degraded_rate = drift_degraded_rate;
  return options;
}

BatchPredictorOptions ServeConfig::MakeBatchingOptions() const {
  BatchPredictorOptions batching;
  batching.max_batch_size = batch;
  batching.max_delay_seconds = max_delay_seconds;
  batching.max_queue = max_queue;
  return batching;
}

ServingPlaneOptions ServeConfig::MakePlaneOptions() const {
  ServingPlaneOptions plane;
  plane.shards = shards;
  plane.session.max_gap_seconds = gap_seconds;
  plane.session.max_segment_points = max_window;
  plane.batching = MakeBatchingOptions();
  return plane;
}

ReplayOptions ServeConfig::MakeReplayOptions() const {
  ReplayOptions replay;
  replay.deadline_seconds = deadline_seconds;
  replay.retry_budget = retries;
  return replay;
}

Result<ServeConfig> ParseServeFlags(const Flags& flags,
                                    const ServeConfigDefaults& defaults) {
  ServeConfig config;

  config.users = flags.GetInt("users", defaults.users);
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(config.users, 1, "users"));
  config.days = flags.GetInt("days", defaults.days);
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(config.days, 1, "days"));
  config.seed = flags.GetUint64("seed", defaults.seed);
  config.trees = flags.GetInt("trees", defaults.trees);
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(config.trees, 1, "trees"));

  const int batch =
      flags.GetInt("batch", static_cast<int>(defaults.batch));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(batch, 1, "batch"));
  config.batch = static_cast<size_t>(batch);

  const double max_delay_ms =
      flags.GetDouble("max_delay_ms", defaults.max_delay_ms);
  TRAJKIT_RETURN_IF_ERROR(RequireNonNegative(max_delay_ms, "max_delay_ms"));
  config.max_delay_seconds = max_delay_ms * 1e-3;

  const int max_queue =
      flags.GetInt("max_queue", static_cast<int>(defaults.max_queue));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(max_queue, 0, "max_queue"));
  config.max_queue = static_cast<size_t>(max_queue);

  const int shards =
      flags.GetInt("shards", static_cast<int>(defaults.shards));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(shards, 1, "shards"));
  config.shards = static_cast<size_t>(shards);

  config.gap_seconds = flags.GetDouble("gap", defaults.gap_seconds);
  TRAJKIT_RETURN_IF_ERROR(RequireNonNegative(config.gap_seconds, "gap"));

  const int max_window =
      flags.GetInt("max_window", static_cast<int>(defaults.max_window));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(max_window, 0, "max_window"));
  config.max_window = static_cast<size_t>(max_window);

  const double deadline_ms =
      flags.GetDouble("deadline_ms", defaults.deadline_ms);
  TRAJKIT_RETURN_IF_ERROR(RequireNonNegative(deadline_ms, "deadline_ms"));
  config.deadline_seconds = deadline_ms * 1e-3;

  config.retries = flags.GetInt("retries", defaults.retries);
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(config.retries, 0, "retries"));

  // An explicit --fault_spec (even an empty one, which disables the
  // entry point's default chaos) beats the defaults.
  config.fault_spec_text = flags.Has("fault_spec")
                               ? flags.GetString("fault_spec", "")
                               : defaults.fault_spec;
  if (!config.fault_spec_text.empty()) {
    auto spec = FaultSpec::Parse(config.fault_spec_text);
    if (!spec.ok()) {
      return Status::InvalidArgument(
          StrPrintf("--fault_spec: %s", spec.status().message().c_str()));
    }
    config.fault_spec = spec.value();
  }

  // Telemetry plane.
  config.http_port = flags.GetInt("http_port", -1);
  if (config.http_port < -1 || config.http_port > 65535) {
    return Status::InvalidArgument(StrPrintf(
        "--http_port must be in [0, 65535] (got %d)", config.http_port));
  }
  config.http_linger = flags.GetBool("http_linger", false);
  if (config.http_linger && config.http_port < 0) {
    return Status::InvalidArgument(
        "--http_linger requires --http_port");
  }
  config.slo_spec_text = flags.GetString("slo_spec", "");
  if (!config.slo_spec_text.empty()) {
    std::string error;
    if (!obs::ParseSloSpecs(config.slo_spec_text, &config.slo_specs,
                            &error)) {
      return Status::InvalidArgument(
          StrPrintf("--slo_spec: %s", error.c_str()));
    }
  }
  const int timeseries_capacity = flags.GetInt(
      "timeseries_capacity", static_cast<int>(config.timeseries_capacity));
  TRAJKIT_RETURN_IF_ERROR(
      RequireAtLeast(timeseries_capacity, 2, "timeseries_capacity"));
  config.timeseries_capacity = static_cast<size_t>(timeseries_capacity);
  const int tick_every =
      flags.GetInt("tick_every", static_cast<int>(config.tick_every));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(tick_every, 1, "tick_every"));
  config.tick_every = static_cast<size_t>(tick_every);

  // Continuous training: every knob requires the main switch, so a typo'd
  // or stray CT flag fails loudly instead of silently doing nothing.
  config.ct.enabled = flags.GetBool("continuous_training", false);
  static constexpr const char* kCtOnlyFlags[] = {
      "step_every",    "refit_every",     "min_fit",
      "min_shadow",    "promote_epsilon", "cost_budget",
      "ct_trees",      "ct_seed",         "ct_buffer",
      "drift_window",  "drift_threshold", "drift_degraded_rate",
  };
  if (!config.ct.enabled) {
    for (const char* name : kCtOnlyFlags) {
      if (flags.Has(name)) {
        return Status::InvalidArgument(
            StrPrintf("--%s requires --continuous_training", name));
      }
    }
    return config;
  }

  ContinuousTrainingConfig& ct = config.ct;
  const int step_every =
      flags.GetInt("step_every", static_cast<int>(ct.step_every));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(step_every, 1, "step_every"));
  ct.step_every = static_cast<size_t>(step_every);

  const int refit_every =
      flags.GetInt("refit_every", static_cast<int>(ct.refit_every));
  TRAJKIT_RETURN_IF_ERROR(
      RequireAtLeast(refit_every, step_every, "refit_every"));
  ct.refit_every = static_cast<size_t>(refit_every);

  const int min_fit = flags.GetInt("min_fit", static_cast<int>(ct.min_fit));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(min_fit, 1, "min_fit"));
  ct.min_fit = static_cast<size_t>(min_fit);

  const int min_shadow =
      flags.GetInt("min_shadow", static_cast<int>(ct.min_shadow));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(min_shadow, 1, "min_shadow"));
  ct.min_shadow = static_cast<size_t>(min_shadow);

  ct.promote_epsilon =
      flags.GetDouble("promote_epsilon", ct.promote_epsilon);
  ct.cost_budget = flags.GetDouble("cost_budget", ct.cost_budget);
  if (ct.cost_budget <= 0.0) {
    return Status::InvalidArgument(StrPrintf(
        "--cost_budget must be > 0 (got %g)", ct.cost_budget));
  }

  ct.trees = flags.GetInt("ct_trees", ct.trees);
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(ct.trees, 1, "ct_trees"));
  ct.seed = flags.GetUint64("ct_seed", ct.seed);

  const int buffer = flags.GetInt("ct_buffer", static_cast<int>(ct.buffer));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(buffer, min_fit, "ct_buffer"));
  ct.buffer = static_cast<size_t>(buffer);

  const int drift_window =
      flags.GetInt("drift_window", static_cast<int>(ct.drift_window));
  TRAJKIT_RETURN_IF_ERROR(RequireAtLeast(drift_window, 1, "drift_window"));
  ct.drift_window = static_cast<size_t>(drift_window);

  ct.drift_threshold =
      flags.GetDouble("drift_threshold", ct.drift_threshold);
  if (ct.drift_threshold <= 0.0) {
    return Status::InvalidArgument(StrPrintf(
        "--drift_threshold must be > 0 (got %g)", ct.drift_threshold));
  }

  ct.drift_degraded_rate =
      flags.GetDouble("drift_degraded_rate", ct.drift_degraded_rate);
  if (ct.drift_degraded_rate < 0.0 || ct.drift_degraded_rate > 1.0) {
    return Status::InvalidArgument(
        StrPrintf("--drift_degraded_rate must be in [0, 1] (got %g)",
                  ct.drift_degraded_rate));
  }

  return config;
}

}  // namespace trajkit::serve
