#ifndef TRAJKIT_SERVE_STREAMING_FEATURES_H_
#define TRAJKIT_SERVE_STREAMING_FEATURES_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/result.h"
#include "stats/descriptive.h"
#include "traj/point_features.h"
#include "traj/trajectory_features.h"
#include "traj/types.h"

namespace trajkit::serve {

/// Incremental construction of the paper's 70-dim trajectory-feature vector
/// for one *open* segment: GPS fixes are ingested one at a time, each in
/// O(1), and the full vector is materialized on demand at close time.
///
/// Parity guarantee: after feeding the points of a segment in order,
/// Flush() is **bit-identical** to the offline path
/// `TrajectoryFeatureExtractor::Extract` on the same points. This holds
/// because (a) the per-point derivations below replicate
/// `traj::ComputePointFeatures` operation-for-operation — including the
/// index-0 backfill ("the speed of the first trajectory point is equal to
/// the speed of the second") — so the accumulated channel buffers equal the
/// batch kernel's output arrays, and (b) Flush() feeds those buffers
/// through the very same statistics code the batch extractor uses. The
/// order-sensitive percentile/median features are the reason the channel
/// values are buffered per open segment (the buffer is bounded by the
/// session layer's max-window close rule) instead of folded into streaming
/// accumulators; the streaming `stats::RunningStats` are additionally
/// maintained per channel for zero-flush live monitoring.
class StreamingFeatureExtractor {
 public:
  explicit StreamingFeatureExtractor(traj::PointFeatureOptions options = {})
      : options_(options) {}

  /// Ingests the next fix of the open segment. O(1) amortized.
  void Add(const traj::TrajectoryPoint& point);

  /// Number of points ingested since construction / the last Reset().
  size_t num_points() const { return num_points_; }

  /// Live Welford accumulator of a point-feature channel (index as in
  /// `traj::ChannelNames()`): count/min/max/mean/stddev without a flush.
  /// Tracks exactly the values the batch kernel would emit, including the
  /// duplicated index-0 backfill.
  const stats::RunningStats& LiveStats(int channel) const;

  /// The accumulated point-feature channels (index-aligned with the batch
  /// kernel's output for the same points).
  const traj::PointFeatures& point_features() const { return features_; }

  /// Computes the 70 trajectory features of the open segment. Returns
  /// InvalidArgument when fewer than 2 points were ingested. Does not
  /// reset; callers may keep streaming afterwards.
  Result<std::vector<double>> Flush() const;

  /// Clears all state for reuse on the next segment.
  void Reset();

 private:
  traj::PointFeatureOptions options_;
  size_t num_points_ = 0;
  traj::TrajectoryPoint last_point_;
  traj::PointFeatures features_;
  std::array<stats::RunningStats, traj::kNumFeatureChannels> live_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_STREAMING_FEATURES_H_
