#include "serve/session_manager.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "obs/request_trace.h"

namespace trajkit::serve {

std::string_view CloseReasonToString(CloseReason reason) {
  switch (reason) {
    case CloseReason::kModeChange:
      return "mode_change";
    case CloseReason::kDayBoundary:
      return "day_boundary";
    case CloseReason::kTimeGap:
      return "time_gap";
    case CloseReason::kMaxWindow:
      return "max_window";
    case CloseReason::kIdle:
      return "idle";
    case CloseReason::kSessionCap:
      return "session_cap";
    case CloseReason::kFlush:
      return "flush";
  }
  return "unknown";
}

SessionManager::SessionManager(SessionOptions options)
    : options_(options),
      metric_points_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.points_ingested")),
      metric_out_of_order_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.points_dropped_out_of_order")),
      metric_emitted_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.segments_emitted")),
      metric_discarded_short_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.segments_discarded_short")),
      metric_discarded_unlabeled_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.segments_discarded_unlabeled")),
      metric_evicted_idle_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.evicted_idle")),
      metric_evicted_cap_(obs::MetricsRegistry::Global().GetCounter(
          "serve.sessions.evicted_cap")),
      metric_active_(obs::MetricsRegistry::Global().GetGauge(
          "serve.sessions.active")) {
  for (size_t r = 0; r < metric_closed_by_reason_.size(); ++r) {
    metric_closed_by_reason_[r] = &obs::MetricsRegistry::Global().GetCounter(
        "serve.sessions.closed." +
        std::string(CloseReasonToString(static_cast<CloseReason>(r))));
  }
  if (options_.shard >= 0) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const std::string prefix =
        StrPrintf("serve.shard%d.sessions.", options_.shard);
    shard_points_ = &registry.GetCounter(prefix + "points_ingested");
    shard_emitted_ = &registry.GetCounter(prefix + "segments_emitted");
    shard_evicted_idle_ = &registry.GetCounter(prefix + "evicted_idle");
    shard_evicted_cap_ = &registry.GetCounter(prefix + "evicted_cap");
    shard_active_ = &registry.GetGauge(prefix + "active");
  }
}

void SessionManager::CloseSegment(int64_t session_id, Session* session,
                                  CloseReason reason,
                                  std::vector<ClosedSegment>* closed) {
  if (session->count == 0) return;
  // Feature extraction needs two points even when the configured floor is
  // lower.
  const size_t min_points =
      std::max<size_t>(2, static_cast<size_t>(
                              std::max(options_.min_points, 0)));
  if (session->count < min_points) {
    ++stats_.segments_discarded_short;
    metric_discarded_short_.Increment();
  } else if (options_.drop_unlabeled &&
             session->mode == traj::Mode::kUnknown) {
    ++stats_.segments_discarded_unlabeled;
    metric_discarded_unlabeled_.Increment();
  } else {
    Result<std::vector<double>> features = session->extractor.Flush();
    TRAJKIT_CHECK(features.ok()) << features.status().ToString();
    ClosedSegment segment;
    segment.session_id = session_id;
    segment.user_id = static_cast<int>(session_id);
    segment.day = session->day;
    segment.mode = session->mode;
    segment.start_time = session->start_time;
    segment.end_time = session->last_time;
    segment.num_points = session->count;
    segment.reason = reason;
    segment.bbox = session->bbox;
    segment.features = std::move(features).value();
    if (options_.keep_points) segment.points = session->points;
    // Mint the request trace here: segments are closed on the (single)
    // ingest thread in deterministic order, so trace ids — and with them
    // the head-sampling decision — are reproducible at any worker-thread
    // count.
    obs::RequestTracer& tracer = obs::RequestTracer::Global();
    if (tracer.enabled()) {
      segment.trace_id = tracer.Mint();
      tracer.RecordInstant(segment.trace_id, "segment_close",
                           obs::TracePhase::kSession, tracer.NowNs(),
                           static_cast<uint64_t>(reason));
    }
    closed->push_back(std::move(segment));
    ++stats_.segments_emitted;
    metric_emitted_.Increment();
    if (shard_emitted_ != nullptr) shard_emitted_->Increment();
    metric_closed_by_reason_[static_cast<size_t>(reason)]->Increment();
    if (closed_sink_) closed_sink_(closed->back());
  }
  session->extractor.Reset();
  session->points.clear();
  session->bbox = geo::BoundingBox();
  session->count = 0;
}

void SessionManager::Ingest(int64_t session_id,
                            const traj::TrajectoryPoint& point,
                            std::vector<ClosedSegment>* closed) {
  ++stats_.points_ingested;
  metric_points_.Increment();
  if (shard_points_ != nullptr) shard_points_->Increment();
  auto [it, inserted] = sessions_.try_emplace(session_id);
  Session& session = it->second;
  if (inserted) {
    session.extractor = StreamingFeatureExtractor(options_.point_features);
    lru_.push_front(session_id);
    session.lru = lru_.begin();
  } else if (session.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, session.lru);
  }

  // Same cleaning rule as the offline segmenter: a fix older than the last
  // kept fix of this session is dropped (even across a segment boundary).
  if (session.has_last && point.timestamp < session.last_time) {
    ++stats_.points_dropped_out_of_order;
    metric_out_of_order_.Increment();
    return;
  }

  const int64_t day = traj::DayIndex(point.timestamp);
  if (session.count > 0) {
    // Boundary checks in the offline segmenter's order; the first match
    // names the close reason.
    bool boundary = false;
    CloseReason reason = CloseReason::kFlush;
    if (options_.split_on_mode && point.mode != session.mode) {
      boundary = true;
      reason = CloseReason::kModeChange;
    } else if (options_.split_on_day && day != session.day) {
      boundary = true;
      reason = CloseReason::kDayBoundary;
    } else if (options_.max_gap_seconds > 0.0 &&
               point.timestamp - session.last_time >
                   options_.max_gap_seconds) {
      boundary = true;
      reason = CloseReason::kTimeGap;
    }
    if (boundary) CloseSegment(session_id, &session, reason, closed);
  }

  if (session.count == 0) {
    session.day = day;
    session.mode = point.mode;
    session.start_time = point.timestamp;
  }
  session.extractor.Add(point);
  if (options_.keep_points) session.points.push_back(point);
  session.bbox.Extend(point.pos);
  ++session.count;
  session.last_time = point.timestamp;
  session.has_last = true;

  // Max-window rule: the serving-only bound on per-segment buffers.
  if (options_.max_segment_points > 0 &&
      session.count >= options_.max_segment_points) {
    CloseSegment(session_id, &session, CloseReason::kMaxWindow, closed);
  }

  // Session cap: evict the least-recently-updated session. The current
  // session was just moved to the front, so the victim is always another
  // one.
  if (options_.max_sessions > 0 && sessions_.size() > options_.max_sessions) {
    CloseSession(lru_.back(), CloseReason::kSessionCap, closed);
  }
  SetActiveGauges();
}

void SessionManager::EvictIdle(double now,
                               std::vector<ClosedSegment>* closed) {
  for (int64_t session_id : IdleSessionIds(now)) {
    CloseSession(session_id, CloseReason::kIdle, closed);
  }
  SetActiveGauges();
}

void SessionManager::FlushAll(std::vector<ClosedSegment>* closed) {
  for (int64_t session_id : OpenSessionIds()) {
    CloseSession(session_id, CloseReason::kFlush, closed);
  }
  SetActiveGauges();
}

std::vector<int64_t> SessionManager::OpenSessionIds() const {
  std::vector<int64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [session_id, session] : sessions_) {
    ids.push_back(session_id);
  }
  return ids;
}

std::vector<int64_t> SessionManager::IdleSessionIds(double now) const {
  std::vector<int64_t> ids;
  if (options_.idle_after_seconds <= 0.0) return ids;
  for (const auto& [session_id, session] : sessions_) {
    if (session.has_last &&
        now - session.last_time > options_.idle_after_seconds) {
      ids.push_back(session_id);
    }
  }
  return ids;
}

void SessionManager::CloseSession(int64_t session_id, CloseReason reason,
                                  std::vector<ClosedSegment>* closed) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  CloseSegment(session_id, &it->second, reason, closed);
  lru_.erase(it->second.lru);
  sessions_.erase(it);
  if (reason == CloseReason::kIdle) {
    ++stats_.sessions_evicted_idle;
    metric_evicted_idle_.Increment();
    if (shard_evicted_idle_ != nullptr) shard_evicted_idle_->Increment();
  } else if (reason == CloseReason::kSessionCap) {
    ++stats_.sessions_evicted_cap;
    metric_evicted_cap_.Increment();
    if (shard_evicted_cap_ != nullptr) shard_evicted_cap_->Increment();
  }
  SetActiveGauges();
}

void SessionManager::SetActiveGauges() {
  if (shard_active_ != nullptr) {
    // Sharded: own only the per-shard gauge. The ServingPlane keeps the
    // aggregate serve.sessions.active gauge (a per-shard write here would
    // clobber it with one shard's count).
    shard_active_->Set(static_cast<double>(sessions_.size()));
  } else {
    metric_active_.Set(static_cast<double>(sessions_.size()));
  }
}

}  // namespace trajkit::serve
