#ifndef TRAJKIT_SERVE_MODEL_REGISTRY_H_
#define TRAJKIT_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"
#include "ml/random_forest.h"
#include "traj/trajectory_features.h"

namespace trajkit::serve {

/// How far down the degradation chain the answer came from. The predictor
/// walks kNone -> kPreviousModel -> kMajorityClass and stops at the first
/// rung that can produce an answer (see BatchPredictor).
enum class DegradationLevel {
  kNone = 0,           ///< Served by the active model.
  kPreviousModel = 1,  ///< Active model unusable; served by the last good
                       ///< snapshot the predictor had cached.
  kMajorityClass = 2,  ///< No usable model; label-prior majority class.
};

const char* DegradationLevelToString(DegradationLevel level);

/// One prediction answer.
struct Prediction {
  /// Predicted class index — computed with `RandomForest::Predict`, so it
  /// is bit-identical to the offline pipeline on the same features.
  int label = -1;
  /// Per-class probabilities (soft-voting average over trees).
  std::vector<double> probabilities;
  /// Version of the model that served the request.
  std::string model_version;
  /// Enqueue-to-completion latency, filled by BatchPredictor (0 on the
  /// direct path).
  double latency_seconds = 0.0;
  /// Which rung of the fallback chain produced this answer.
  DegradationLevel degradation = DegradationLevel::kNone;
};

/// A deployable model: forest + feature-subset mask + optional min-max
/// normalizer. The three travel together so a hot swap can never pair one
/// model's forest with another's subset or scaling (the registry publishes
/// them as one immutable snapshot).
struct ServingModel {
  std::string version;
  ml::RandomForest forest;
  /// Width of the full feature vector requests carry (70 for the paper's
  /// extractor, 78 with extended features).
  int num_input_features = traj::kNumTrajectoryFeatures;
  /// Indices into the full vector the forest was trained on (e.g. the
  /// Fig. 3 top-20 mask); empty = all features, in order.
  std::vector<int> feature_subset;
  /// Per-column min/max applied after subsetting, matching
  /// `ml::MinMaxScaler::Transform` (constant columns map to 0); both empty
  /// = no normalization (the random-forest serving default).
  std::vector<double> norm_mins;
  std::vector<double> norm_maxs;

  /// Number of columns the forest actually consumes.
  size_t EffectiveFeatureCount() const {
    return feature_subset.empty() ? static_cast<size_t>(num_input_features)
                                  : feature_subset.size();
  }

  /// Checks internal consistency (fitted forest, subset indices in range,
  /// widths line up). Registered models are always valid.
  Status Validate() const;

  /// Subsets + normalizes full-width rows into the forest's input matrix.
  /// Returns InvalidArgument when any row has the wrong width.
  Result<ml::Matrix> PrepareBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Predicts a batch of full-width feature vectors.
  Result<std::vector<Prediction>> PredictBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Single-request convenience (the unbatched baseline path).
  Result<Prediction> PredictOne(std::span<const double> features) const;
};

/// Validating constructor: moves the parts into a ServingModel and returns
/// an error instead of a partially-usable model.
Result<ServingModel> MakeServingModel(std::string version,
                                      ml::RandomForest forest,
                                      int num_input_features,
                                      std::vector<int> feature_subset = {},
                                      std::vector<double> norm_mins = {},
                                      std::vector<double> norm_maxs = {});

/// Reads a feature-subset mask from the Fig. 3 selection output
/// (`exp_fig3_feature_selection` CSV: method,k,feature,cv_accuracy): the
/// first `top_k` features of `method` (e.g. "importance", "wrapper"),
/// mapped to indices via the trajectory-feature name registry.
Result<std::vector<int>> LoadFig3FeatureSubset(const std::string& path,
                                               std::string_view method,
                                               int top_k);

/// Versioned registry of serving models with atomic hot-swap: readers call
/// Current() and get an immutable snapshot — a consistent
/// (forest, subset, normalizer) triple that stays alive for as long as
/// they hold the pointer, even if the active model is swapped mid-request.
/// Thread-safe; TSan-clean (see tests/serve_test.cc's race test).
class ModelRegistry {
 public:
  /// Adds a model under its version. Error on validation failure or
  /// duplicate version. Does not change the active model.
  Status Register(ServingModel model);

  /// Atomically makes `version` the model new readers see.
  Status Activate(std::string_view version);

  /// Register + Activate in one step.
  Status RegisterAndActivate(ServingModel model);

  /// The active model, or nullptr when none was activated yet.
  std::shared_ptr<const ServingModel> Current() const;

  /// A registered model by version, or nullptr.
  std::shared_ptr<const ServingModel> Get(std::string_view version) const;

  /// Registered versions, ascending.
  std::vector<std::string> Versions() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServingModel>, std::less<>>
      models_;
  std::shared_ptr<const ServingModel> active_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_MODEL_REGISTRY_H_
