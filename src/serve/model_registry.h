#ifndef TRAJKIT_SERVE_MODEL_REGISTRY_H_
#define TRAJKIT_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"
#include "ml/random_forest.h"
#include "traj/trajectory_features.h"

namespace trajkit::serve {

/// How far down the degradation chain the answer came from. The predictor
/// walks kNone -> kPreviousModel -> kMajorityClass and stops at the first
/// rung that can produce an answer (see BatchPredictor).
enum class DegradationLevel {
  kNone = 0,           ///< Served by the active model.
  kPreviousModel = 1,  ///< Active model unusable; served by the last good
                       ///< snapshot the predictor had cached.
  kMajorityClass = 2,  ///< No usable model; label-prior majority class.
};

const char* DegradationLevelToString(DegradationLevel level);

/// One prediction answer.
struct Prediction {
  /// Predicted class index — computed with `RandomForest::Predict`, so it
  /// is bit-identical to the offline pipeline on the same features.
  int label = -1;
  /// Per-class probabilities (soft-voting average over trees).
  std::vector<double> probabilities;
  /// Version of the model that served the request.
  std::string model_version;
  /// Enqueue-to-completion latency, filled by BatchPredictor (0 on the
  /// direct path).
  double latency_seconds = 0.0;
  /// Which rung of the fallback chain produced this answer.
  DegradationLevel degradation = DegradationLevel::kNone;
  /// What the shadow candidate would have answered for the same features,
  /// or -1 when no shadow model was scored on this request. Never served —
  /// recorded so the continuous trainer can compare accuracy offline.
  int shadow_label = -1;
  /// Version of the shadow model behind `shadow_label` (empty when -1).
  std::string shadow_version;
};

/// A deployable model: forest + feature-subset mask + optional min-max
/// normalizer. The three travel together so a hot swap can never pair one
/// model's forest with another's subset or scaling (the registry publishes
/// them as one immutable snapshot).
struct ServingModel {
  std::string version;
  ml::RandomForest forest;
  /// Width of the full feature vector requests carry (70 for the paper's
  /// extractor, 78 with extended features).
  int num_input_features = traj::kNumTrajectoryFeatures;
  /// Indices into the full vector the forest was trained on (e.g. the
  /// Fig. 3 top-20 mask); empty = all features, in order.
  std::vector<int> feature_subset;
  /// Per-column min/max applied after subsetting, matching
  /// `ml::MinMaxScaler::Transform` (constant columns map to 0); both empty
  /// = no normalization (the random-forest serving default).
  std::vector<double> norm_mins;
  std::vector<double> norm_maxs;

  /// Number of columns the forest actually consumes.
  size_t EffectiveFeatureCount() const {
    return feature_subset.empty() ? static_cast<size_t>(num_input_features)
                                  : feature_subset.size();
  }

  /// Checks internal consistency (fitted forest, subset indices in range,
  /// widths line up). Registered models are always valid.
  Status Validate() const;

  /// Subsets + normalizes full-width rows into the forest's input matrix.
  /// Returns InvalidArgument when any row has the wrong width.
  Result<ml::Matrix> PrepareBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Predicts a batch of full-width feature vectors.
  Result<std::vector<Prediction>> PredictBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Single-request convenience (the unbatched baseline path).
  Result<Prediction> PredictOne(std::span<const double> features) const;
};

/// Validating constructor: moves the parts into a ServingModel and returns
/// an error instead of a partially-usable model.
Result<ServingModel> MakeServingModel(std::string version,
                                      ml::RandomForest forest,
                                      int num_input_features,
                                      std::vector<int> feature_subset = {},
                                      std::vector<double> norm_mins = {},
                                      std::vector<double> norm_maxs = {});

/// Reads a feature-subset mask from the Fig. 3 selection output
/// (`exp_fig3_feature_selection` CSV: method,k,feature,cv_accuracy): the
/// first `top_k` features of `method` (e.g. "importance", "wrapper"),
/// mapped to indices via the trajectory-feature name registry.
Result<std::vector<int>> LoadFig3FeatureSubset(const std::string& path,
                                               std::string_view method,
                                               int top_k);

/// The role a published model plays in the serving plane.
enum class ModelRole {
  kActive = 0,  ///< Serves traffic.
  kShadow = 1,  ///< Scored on the same batches as the active model for
                ///< promotion decisions; its answers are never served.
};

const char* ModelRoleToString(ModelRole role);

/// One coherent read of the registry: the (active, last-good, shadow)
/// triple as of sequence number `seq`. All three pointers were current at
/// the same instant — a reader can never observe a promotion half-applied
/// (e.g. the new active paired with the pre-promotion last-good). Each
/// pointer is an immutable snapshot that stays alive for as long as the
/// lease holds it, even across hot swaps.
struct ModelLease {
  std::shared_ptr<const ServingModel> active;
  /// The model that was active before the most recent swap/promotion
  /// (rollback + audit target); nullptr until the first replacement.
  std::shared_ptr<const ServingModel> last_good;
  /// The shadow candidate under evaluation, or nullptr.
  std::shared_ptr<const ServingModel> shadow;
  /// Registry mutation counter at acquire time (starts at 0, bumps on
  /// every publish / promote / retire).
  uint64_t seq = 0;
};

/// One entry of the registry's bounded audit trail. `event` is one of
/// "publish_active", "publish_shadow", "promote", "retire_shadow";
/// `detail` carries the caller-supplied reason (e.g. the promotion
/// policy's accuracy delta).
struct RegistryAuditEvent {
  uint64_t seq = 0;
  std::string event;
  std::string version;
  std::string detail;
};

/// Versioned registry of serving models with atomic hot-swap: readers call
/// Acquire() and get an immutable ModelLease — a consistent
/// (active, last-good, shadow) triple whose models stay alive for as long
/// as the lease is held, even if the registry mutates mid-request.
/// Writers Publish models into a role; PromoteShadow atomically swaps the
/// shadow candidate into the active slot (demoting the old active to
/// last-good) with a trace-recorded audit landmark. Thread-safe;
/// TSan-clean (see tests/serve_test.cc + serve_ct_test.cc race tests).
class ModelRegistry {
 public:
  /// Adds a model under its version. Error on validation failure or
  /// duplicate version. Does not change what readers see.
  Status Register(ServingModel model);

  /// Register + make visible in `role` in one step. Shadow publishes are
  /// rejected when the candidate's input width differs from the active
  /// model's (the two must score the same request rows).
  Status Publish(ServingModel model, ModelRole role = ModelRole::kActive);

  /// Makes the already-registered `version` visible in `role`.
  Status Publish(std::string_view version, ModelRole role);

  /// Atomically swaps the shadow into the active slot: the old active
  /// becomes last-good, the shadow slot empties, and a
  /// "registry_promotion" trace landmark + audit event record `reason`.
  /// FailedPrecondition when no shadow is published.
  Status PromoteShadow(std::string_view reason);

  /// Drops the shadow candidate (rejected by the promotion policy). The
  /// retired model is also unregistered — unless it is still the active
  /// or last-good model — so a long-running trainer's rejected candidates
  /// don't accumulate. FailedPrecondition when no shadow is published.
  Status RetireShadow(std::string_view reason);

  /// One coherent snapshot of (active, last_good, shadow, seq).
  ModelLease Acquire() const;

  /// The most recent audit events, oldest first (bounded; older events
  /// are dropped).
  std::vector<RegistryAuditEvent> AuditTrail() const;

  /// A registered model by version, or nullptr.
  std::shared_ptr<const ServingModel> Get(std::string_view version) const;

  /// Registered versions, ascending.
  std::vector<std::string> Versions() const;

  size_t size() const;

 private:
  /// Appends to the audit trail and mirrors the tail into the
  /// "serve.registry.audit" info metric. Requires mu_ held.
  void AppendAuditLocked(std::string_view event, std::string_view version,
                         std::string_view detail);
  /// Exports active-model metrics (version info + flat-form gauges).
  /// Requires mu_ held and active_ set.
  void ExportActiveMetricsLocked();

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServingModel>, std::less<>>
      models_;
  std::shared_ptr<const ServingModel> active_;
  std::shared_ptr<const ServingModel> last_good_;
  std::shared_ptr<const ServingModel> shadow_;
  uint64_t seq_ = 0;
  std::deque<RegistryAuditEvent> audit_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_MODEL_REGISTRY_H_
