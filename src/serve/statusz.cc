#include "serve/statusz.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/strings.h"

namespace trajkit::serve {
namespace {

uint64_t CounterValue(const obs::MetricsRegistry& metrics,
                      std::string_view name) {
  const obs::Counter* counter = metrics.FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

double GaugeValue(const obs::MetricsRegistry& metrics,
                  std::string_view name) {
  const obs::Gauge* gauge = metrics.FindGauge(name);
  return gauge == nullptr ? 0.0 : gauge->value();
}

void Appendf(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out += buffer;
}

void AppendQuantileLine(std::string& out, const char* label, double q,
                        const obs::HistogramSnapshot& snap) {
  const size_t bucket = snap.QuantileBucketIndex(q);
  Appendf(out, "  %s: %.3f ms", label, snap.Quantile(q) * 1e3);
  if (bucket < snap.exemplar_ids.size() && snap.exemplar_ids[bucket] != 0) {
    Appendf(out, "  (exemplar trace %" PRIu64 ", %.3f ms)",
            snap.exemplar_ids[bucket], snap.exemplar_values[bucket] * 1e3);
  }
  out += "\n";
}

}  // namespace

std::string Sparkline(const std::vector<double>& values) {
  // Eight block characters, three bytes of UTF-8 each.
  static constexpr const char* kBlocks[] = {
      "\u2581", "\u2582", "\u2583", "\u2584",
      "\u2585", "\u2586", "\u2587", "\u2588"};
  double max = 0.0;
  for (const double v : values) {
    if (v > max) max = v;
  }
  std::string out;
  for (const double v : values) {
    int level = 0;
    if (max > 0.0 && v > 0.0) {
      level = static_cast<int>(v / max * 7.0 + 0.5);
      if (level < 0) level = 0;
      if (level > 7) level = 7;
    }
    out += kBlocks[level];
  }
  return out;
}

std::string RenderStatusPage(const obs::MetricsRegistry& metrics,
                             const obs::RequestTracer& tracer,
                             const StatusPageOptions& options) {
  std::string out = "==== trajkit statusz ====\n";

  out += "model\n";
  const std::string version = metrics.InfoValue("serve.registry.active_version");
  Appendf(out, "  active_version: %s\n",
          version.empty() ? "(none)" : version.c_str());
  Appendf(out, "  registered: %.0f\n",
          GaugeValue(metrics, "serve.registry.models"));
  Appendf(out, "  swaps: %" PRIu64 "  promotions: %" PRIu64 "\n",
          CounterValue(metrics, "serve.registry.swaps"),
          CounterValue(metrics, "serve.registry.promotions"));
  const std::string shadow_version =
      metrics.InfoValue("serve.registry.shadow_version");
  if (!shadow_version.empty()) {
    Appendf(out, "  shadow_version: %s\n", shadow_version.c_str());
  }
  // Compiled flat inference form of the active model (ml/flat_forest.h);
  // every registered model is compiled, so "(not compiled)" only shows
  // before the first activation.
  const double flat_nodes = GaugeValue(metrics, "serve.registry.flat_nodes");
  if (flat_nodes > 0.0) {
    Appendf(out, "  flat_form: compiled (%.0f nodes, quantized=%s)\n",
            flat_nodes,
            GaugeValue(metrics, "serve.registry.flat_quantized") > 0.0
                ? "yes"
                : "no");
  } else {
    out += "  flat_form: (not compiled)\n";
  }

  out += "queue\n";
  Appendf(out, "  depth: %.0f\n",
          GaugeValue(metrics, "serve.batch_predictor.queue_depth"));
  Appendf(out, "  requests: %" PRIu64 "\n",
          CounterValue(metrics, "serve.batch_predictor.requests"));
  Appendf(out, "  batches: %" PRIu64 "\n",
          CounterValue(metrics, "serve.batch_predictor.batches"));

  out += "lifecycle\n";
  const uint64_t shed_queue_full =
      CounterValue(metrics, "serve.shed_total.queue_full");
  const uint64_t shed_preempted =
      CounterValue(metrics, "serve.shed_total.preempted");
  Appendf(out,
          "  shed: %" PRIu64 " (queue_full=%" PRIu64 ", preempted=%" PRIu64
          ")\n",
          shed_queue_full + shed_preempted, shed_queue_full, shed_preempted);
  const uint64_t degraded_previous =
      CounterValue(metrics, "serve.degraded_total.previous_model");
  const uint64_t degraded_majority =
      CounterValue(metrics, "serve.degraded_total.majority_class");
  Appendf(out,
          "  degraded: %" PRIu64 " (previous_model=%" PRIu64
          ", majority_class=%" PRIu64 ")\n",
          degraded_previous + degraded_majority, degraded_previous,
          degraded_majority);
  Appendf(out, "  deadline_exceeded: %" PRIu64 "\n",
          CounterValue(metrics, "serve.deadline_exceeded_total"));
  Appendf(out, "  unavailable: %" PRIu64 "\n",
          CounterValue(metrics, "serve.unavailable_total"));

  out += "faults injected\n";
  Appendf(out, "  swap_stall: %" PRIu64 "\n",
          CounterValue(metrics, "serve.faults.injected.swap_stall"));
  Appendf(out, "  predict_fail: %" PRIu64 "\n",
          CounterValue(metrics, "serve.faults.injected.predict_fail"));
  Appendf(out, "  batch_delay: %" PRIu64 "\n",
          CounterValue(metrics, "serve.faults.injected.batch_delay"));

  // Shadow evaluation + continuous training (serve/continuous_training.h):
  // rendered only when a shadow has ever been scored / a trainer is live
  // in this process.
  out += "shadow\n";
  if (metrics.FindCounter("serve.shadow.samples") == nullptr) {
    out += "  (no data)\n";
  } else {
    Appendf(out, "  samples: %" PRIu64 "  agreement: %" PRIu64 "\n",
            CounterValue(metrics, "serve.shadow.samples"),
            CounterValue(metrics, "serve.shadow.agreement"));
    Appendf(out, "  accuracy_delta: %+.4f  latency_ratio: %.2f\n",
            GaugeValue(metrics, "serve.shadow.accuracy_delta"),
            GaugeValue(metrics, "serve.shadow.latency_ratio"));
  }
  out += "continuous training\n";
  if (metrics.FindCounter("serve.ct.steps") == nullptr) {
    out += "  (no data)\n";
  } else {
    Appendf(out, "  steps: %" PRIu64 "  refits: %" PRIu64
                 "  buffer: %.0f\n",
            CounterValue(metrics, "serve.ct.steps"),
            CounterValue(metrics, "serve.ct.refits"),
            GaugeValue(metrics, "serve.ct.buffer_size"));
    Appendf(out, "  shadows: %" PRIu64 "  promotions: %" PRIu64
                 "  retired: %" PRIu64 "\n",
            CounterValue(metrics, "serve.registry.shadow_installs"),
            CounterValue(metrics, "serve.registry.promotions"),
            CounterValue(metrics, "serve.registry.shadow_retired"));
    Appendf(out, "  drift: score=%.2f triggers=%" PRIu64 "\n",
            GaugeValue(metrics, "serve.ct.drift_score"),
            CounterValue(metrics, "serve.ct.drift_triggers"));
  }

  // Registry audit trail: the last few publish/promote/retire events,
  // mirrored by the registry into one info metric (" | "-joined).
  const std::string audit = metrics.InfoValue("serve.registry.audit");
  out += "registry audit (most recent last)\n";
  if (audit.empty()) {
    out += "  (no data)\n";
  } else {
    size_t begin = 0;
    while (begin <= audit.size()) {
      const size_t end = audit.find(" | ", begin);
      const std::string entry =
          audit.substr(begin, end == std::string::npos ? std::string::npos
                                                       : end - begin);
      if (!entry.empty()) Appendf(out, "  %s\n", entry.c_str());
      if (end == std::string::npos) break;
      begin = end + 3;
    }
  }

  // Per-shard breakdown (serve.shard<i>.*): rendered only when a sharded
  // ServingPlane is live in this process — shard 0's counters exist once
  // one was built. Counts attribute load; the unlabelled metrics above
  // stay the cross-shard aggregate.
  out += "shards\n";
  if (metrics.FindCounter("serve.shard0.sessions.points_ingested") ==
          nullptr &&
      metrics.FindCounter("serve.shard0.batch_predictor.requests") ==
          nullptr) {
    out += "  (no data)\n";
  } else {
    for (int s = 0;; ++s) {
      const std::string prefix = StrPrintf("serve.shard%d.", s);
      const bool has_sessions =
          metrics.FindCounter(prefix + "sessions.points_ingested") != nullptr;
      const bool has_predictor =
          metrics.FindCounter(prefix + "batch_predictor.requests") != nullptr;
      if (!has_sessions && !has_predictor) break;
      Appendf(out,
              "  shard %d: points=%" PRIu64 " segments=%" PRIu64
              " active=%.0f requests=%" PRIu64 " depth=%.0f shed=%" PRIu64
              " degraded=%" PRIu64 " deadline=%" PRIu64 "\n",
              s, CounterValue(metrics, prefix + "sessions.points_ingested"),
              CounterValue(metrics, prefix + "sessions.segments_emitted"),
              GaugeValue(metrics, prefix + "sessions.active"),
              CounterValue(metrics, prefix + "batch_predictor.requests"),
              GaugeValue(metrics, prefix + "batch_predictor.queue_depth"),
              CounterValue(metrics, prefix + "shed_total"),
              CounterValue(metrics, prefix + "degraded_total"),
              CounterValue(metrics, prefix + "deadline_exceeded_total"));
    }
  }

  out += "latency (serve.batch_predictor.latency_seconds)\n";
  const obs::Histogram* latency =
      metrics.FindHistogram("serve.batch_predictor.latency_seconds");
  if (latency == nullptr || latency->count() == 0) {
    out += "  (no observations)\n";
  } else {
    const obs::HistogramSnapshot snap = latency->snapshot();
    Appendf(out, "  count: %" PRIu64 "  mean: %.3f ms\n", snap.count,
            snap.count == 0
                ? 0.0
                : snap.sum / static_cast<double>(snap.count) * 1e3);
    AppendQuantileLine(out, "p50", 0.50, snap);
    AppendQuantileLine(out, "p90", 0.90, snap);
    AppendQuantileLine(out, "p99", 0.99, snap);
  }

  // Live telemetry: current SLO burn-rate state and recent-history
  // sparklines from the time-series store. Both render "(no data)" when
  // no telemetry plane is armed in this process.
  out += "slo\n";
  if (options.slo == nullptr || options.slo->states().empty()) {
    out += "  (no data)\n";
  } else {
    for (const obs::SloState& state : options.slo->states()) {
      Appendf(out,
              "  %s: %s  burn_fast=%.3g burn_slow=%.3g "
              "budget_remaining=%.3g transitions=%" PRIu64 "\n",
              state.name.c_str(), state.breached ? "BREACH" : "ok",
              state.burn_fast, state.burn_slow, state.budget_remaining,
              state.transitions);
    }
  }

  out += "timeseries\n";
  if (options.timeseries == nullptr ||
      options.timeseries->tick_count() == 0) {
    out += "  (no data)\n";
  } else {
    const obs::TimeSeriesStore& ts = *options.timeseries;
    Appendf(out, "  ticks: %zu (capacity %zu)\n", ts.tick_count(),
            ts.capacity());
    for (const auto& [name, kind] : ts.SeriesKinds()) {
      // Counters/histograms plot per-tick increments (a cumulative ramp
      // reads as a wedge, not a trend); gauges plot raw values.
      std::vector<double> values =
          ts.RecentSamples(name, options.sparkline_ticks + 1);
      if (kind != "gauge" && !values.empty()) {
        for (size_t i = values.size() - 1; i > 0; --i) {
          const double step = values[i] - values[i - 1];
          values[i] = step >= 0 ? step : values[i];
        }
        values.erase(values.begin());
      }
      Appendf(out, "  %-44s %s ", name.c_str(), kind.c_str());
      out += Sparkline(values);
      Appendf(out, " delta=%.6g rate=%.6g",
              ts.Delta(name, options.sparkline_ticks),
              ts.Rate(name, options.sparkline_ticks));
      if (kind == "histogram") {
        Appendf(out, " p99=%.3fms",
                ts.WindowedQuantile(name, 0.99, options.sparkline_ticks) *
                    1e3);
      }
      out += "\n";
    }
  }

  // Trajectory store (src/store/): rendered only when a store is live in
  // this process — the store.segments counter exists once one was built.
  out += "store\n";
  if (metrics.FindCounter("store.segments") == nullptr) {
    out += "  (no data)\n";
  } else {
    Appendf(out, "  segments: %.0f\n", GaugeValue(metrics, "store.size"));
    Appendf(out, "  ingested_total: %" PRIu64 "\n",
            CounterValue(metrics, "store.segments"));
    Appendf(out, "  index_nodes: %.0f  bulk_loads: %" PRIu64 "\n",
            GaugeValue(metrics, "store.index.nodes"),
            CounterValue(metrics, "store.bulk_loads"));
    Appendf(out, "  queries: %" PRIu64 "  nodes_visited: %" PRIu64
                 "  postings_skipped: %" PRIu64 "\n",
            CounterValue(metrics, "store.queries"),
            CounterValue(metrics, "store.query.nodes_visited"),
            CounterValue(metrics, "store.query.postings_skipped"));
    const obs::Histogram* query_latency =
        metrics.FindHistogram("store.query.latency_seconds");
    if (query_latency == nullptr || query_latency->count() == 0) {
      out += "  query latency: (no observations)\n";
    } else {
      const obs::HistogramSnapshot snap = query_latency->snapshot();
      Appendf(out, "  query latency: count %" PRIu64 "  p50 %.3f ms  "
                   "p99 %.3f ms\n",
              snap.count, snap.Quantile(0.50) * 1e3,
              snap.Quantile(0.99) * 1e3);
    }
  }

  const std::vector<obs::RetainedTraceInfo> retained =
      tracer.RetainedTraces();
  if (!tracer.enabled()) {
    out += "retained traces: (tracing disabled)\n";
  } else if (retained.empty()) {
    out += "retained traces: none (no bad outcomes tail-kept)\n";
  } else {
    const size_t show =
        retained.size() < options.max_retained_traces
            ? retained.size()
            : options.max_retained_traces;
    Appendf(out, "retained traces (%zu tail-kept, showing last %zu)\n",
            retained.size(), show);
    for (size_t i = retained.size() - show; i < retained.size(); ++i) {
      const obs::RetainedTraceInfo& info = retained[i];
      Appendf(out, "  trace %" PRIu64 "  events=%zu  outcome=%s", info.id,
              info.num_events, info.outcome);
      if (info.fault) out += "  fault";
      if (info.degraded) out += "  degraded";
      out += "\n";
    }
  }
  return out;
}

}  // namespace trajkit::serve
