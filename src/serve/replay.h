#ifndef TRAJKIT_SERVE_REPLAY_H_
#define TRAJKIT_SERVE_REPLAY_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "core/label_sets.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "traj/types.h"

namespace trajkit::serve {

class ContinuousTrainer;

/// Knobs of a corpus replay. The session-layer and batching configuration
/// live on the ServingPlane the replay drives (ServingPlaneOptions).
struct ReplayOptions {
  /// Run EvictIdle (against event time, i.e. the timestamp of the point
  /// just ingested) every this many points; 0 = never.
  size_t evict_every_points = 0;
  /// Per-request deadline measured from submission; 0 (default) = none.
  double deadline_seconds = 0.0;
  /// Priority attached to every replayed request.
  int priority = 0;
  /// Resubmissions allowed per request on a transient (Unavailable)
  /// failure. 0 (default) = never resubmit. Resubmission rounds are paced
  /// by `retry` (jittered exponential backoff, deterministic under
  /// `retry_seed`).
  int retry_budget = 0;
  RetryOptions retry;
  uint64_t retry_seed = 0x72657472790aULL;
  /// Observer invoked once per closed segment after the replay's gather
  /// phase resolves (close order, off the ingest hot path —
  /// `ingest_seconds` never includes it). `predicted_class` is the label
  /// set class the predictor answered, or -1 when the segment was not
  /// evaluated (outside the label set, shed, or deadline-exceeded).
  /// `serve-replay --store_out` persists a trajectory store through this.
  std::function<void(const ClosedSegment& segment, int predicted_class)>
      closed_sink;
  /// Telemetry tick barrier: every `tick_every_segments` closed segments
  /// the replay drains all in-flight requests and then invokes `tick` —
  /// the same drain-then-mutate contract as the trainer barrier, so a
  /// TimeSeriesStore sampled inside the callback sees quiescent metrics
  /// at a position that is a pure function of the corpus (byte-identical
  /// series at any thread/shard count). A final tick fires after the
  /// end-of-stream drain. 0 (default) = no ticks. With ticks installed,
  /// `ingest_seconds` includes the barrier drains (the tick-overhead
  /// bench phase measures exactly this).
  size_t tick_every_segments = 0;
  std::function<void()> tick;
  /// Continuous trainer driven at replay-step barriers (not owned;
  /// nullptr = continuous training off). The replay feeds it every
  /// labeled closed segment and every gathered outcome; whenever the
  /// trainer reports StepDue(), the replay drains all in-flight requests
  /// and only then runs the trainer step — so refit installs, promotions,
  /// and retirements land at deterministic corpus positions and the
  /// replay output stays byte-identical at any thread/shard count. With a
  /// trainer installed, `ingest_seconds` includes these barrier drains.
  ContinuousTrainer* trainer = nullptr;
};

/// Outcome of a replay.
struct ReplayReport {
  size_t points = 0;
  size_t segments_closed = 0;
  /// Segments whose mode is inside the label set (the ones predicted and
  /// scored).
  size_t segments_evaluated = 0;
  /// Closed segments skipped because their mode is outside the label set.
  size_t segments_outside_label_set = 0;
  size_t correct = 0;
  /// Requests resolved DeadlineExceeded (expired while queued).
  size_t deadline_exceeded = 0;
  /// Requests shed by admission control (ResourceExhausted).
  size_t shed = 0;
  /// Requests answered below DegradationLevel::kNone (previous-good model
  /// or label-prior majority class); these still count as evaluated.
  size_t degraded = 0;
  /// Per-rung breakdown of `degraded` (degraded == previous_model +
  /// majority_class): CI asserts each rung of the chain is exercised,
  /// not just the total.
  size_t degraded_previous_model = 0;
  size_t degraded_majority_class = 0;
  /// Resubmissions performed after transient (Unavailable) failures.
  size_t retries = 0;
  /// True class / predicted class per evaluated segment, in close order.
  std::vector<int> y_true;
  std::vector<int> y_pred;
  /// Wall time spent in the ingest loop (excludes waiting on futures).
  double ingest_seconds = 0.0;
  /// Final session-layer counters, summed across the plane's shards.
  SessionManagerStats session_stats;

  double accuracy() const {
    return segments_evaluated == 0
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(segments_evaluated);
  }
};

/// Replays a labelled corpus through the online stack in global timestamp
/// order: a k-way merge over the trajectories feeds points one at a time
/// into `plane` (session id = user id, routed to the user's shard), every
/// closed in-label-set segment is submitted to the shard's predictor, and
/// predictions are scored against the annotated modes. Per-trajectory
/// order is preserved exactly (the merge never reorders a user's own
/// fixes), so the session layer sees the same streams the offline
/// segmenter reads — and because the plane interleaves evict/flush closes
/// in globally ascending session-id order, the report (and every output
/// derived from it) is byte-identical at any shard count.
///
/// Every submitted request is accounted for exactly once in the report:
/// evaluated (possibly degraded), shed, or deadline-exceeded. Transient
/// (Unavailable) failures are resubmitted with backoff (to the same
/// user's shard) while the request's retry budget lasts; any other error
/// aborts the replay with that status.
Result<ReplayReport> ReplayCorpus(const std::vector<traj::Trajectory>& corpus,
                                  const core::LabelSet& labels,
                                  ServingPlane& plane,
                                  const ReplayOptions& options = {});

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_REPLAY_H_
