#ifndef TRAJKIT_SERVE_SERVING_PLANE_H_
#define TRAJKIT_SERVE_SERVING_PLANE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "serve/batch_predictor.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/session_manager.h"

namespace trajkit::serve {

/// Configuration of a sharded serving plane.
struct ServingPlaneOptions {
  /// Number of independent shards; clamped to >= 1.
  size_t shards = 1;
  /// Per-shard session-layer configuration. `session.shard` is overwritten
  /// with the shard index; `session.max_sessions` is a PER-SHARD cap (the
  /// plane-wide ceiling is shards * max_sessions).
  SessionOptions session;
  /// Per-shard micro-batching / admission-control configuration.
  /// `batching.shard` is overwritten with the shard index;
  /// `batching.max_queue` is a per-shard watermark. A configured
  /// `batching.fault_injector` is shared by every shard (its fault draws
  /// are mutex-guarded).
  BatchPredictorOptions batching;
};

/// N independent serving shards — shard-per-core scaling of the ingest
/// path. Requests are routed by hash(user_id) % shards; each shard owns
/// its session map, streaming-extractor state, micro-batch queue, deadline
/// sweeper, and admission-control watermarks, so writers on different
/// shards never contend. Predictions fan in through the single versioned
/// ModelRegistry: every shard snapshots the same registry per batch, so a
/// hot swap stays atomic across shards.
///
/// Determinism contract (the CI shard-determinism matrix pins it): driven
/// from one thread, replay output is byte-identical at any shard count.
/// Three properties carry the argument:
///  - Routing is a pure function of user_id, so a user's stream always
///    lands on one shard in arrival order; per-session segmentation state
///    never crosses shards and close decisions are shard-count-invariant.
///  - EvictIdle/FlushAll interleave closes across shards in globally
///    ascending session-id order via SessionManager::CloseSession — the
///    exact order one unsharded manager produces, which keeps trace-id
///    mint order, sink order, and submit order identical.
///  - A prediction is bit-identical whatever micro-batch (and therefore
///    shard queue) it lands in, per the BatchPredictor contract.
///
/// Thread safety matches the components: each shard is single-writer for
/// Ingest/EvictIdle/FlushAll (different shards may ingest from different
/// threads concurrently — that is the point), while Submit is safe from
/// any thread.
class ServingPlane {
 public:
  /// `registry` must outlive the plane.
  ServingPlane(const ModelRegistry* registry, ServingPlaneOptions options);

  ServingPlane(const ServingPlane&) = delete;
  ServingPlane& operator=(const ServingPlane&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard `user_id` routes to: splitmix64(user_id) % shards. Stable
  /// for the lifetime of the plane — resubmits and retries of the same
  /// user always land on the same shard.
  size_t ShardOf(int64_t user_id) const;

  /// Ingests one fix for `user_id` on its shard (session id = user id).
  void Ingest(int64_t user_id, const traj::TrajectoryPoint& point,
              std::vector<ClosedSegment>* closed);

  /// Closes idle sessions across all shards, interleaved in globally
  /// ascending session-id order (see the determinism contract above).
  void EvictIdle(double now, std::vector<ClosedSegment>* closed);

  /// Closes every open segment across all shards in globally ascending
  /// session-id order and drops all sessions.
  void FlushAll(std::vector<ClosedSegment>* closed);

  /// Submits one request to `user_id`'s shard.
  std::future<Result<Prediction>> Submit(int64_t user_id,
                                         PredictRequest request);

  /// Drains every shard's pending queue on the calling thread.
  void FlushPredictors();

  /// Installs the closed-segment observer on every shard (segments still
  /// arrive in each shard's close order; drive the plane from one thread
  /// for a globally deterministic sink order).
  void set_closed_sink(std::function<void(const ClosedSegment&)> sink);

  SessionManager& sessions(size_t shard) { return shards_[shard]->sessions; }
  BatchPredictor& predictor(size_t shard) {
    return shards_[shard]->predictor;
  }

  /// Open sessions across all shards.
  size_t num_open_sessions() const;

  /// Session-layer counters summed across shards.
  SessionManagerStats session_stats() const;

  /// Predictor counters summed across shards (max_batch is the max).
  BatchPredictor::Counters predictor_counters() const;

 private:
  struct Shard {
    Shard(const ModelRegistry* registry, const SessionOptions& session,
          const BatchPredictorOptions& batching)
        : sessions(session), predictor(registry, batching) {}
    SessionManager sessions;
    BatchPredictor predictor;
  };

  /// Mirrors the summed open-session count into the aggregate
  /// serve.sessions.active gauge (sharded managers write only their own
  /// per-shard gauge).
  void SetActiveGauge();

  /// unique_ptr: shards are immovable (mutexes, threads) and the vector
  /// is sized once in the constructor.
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Gauge& metric_active_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_SERVING_PLANE_H_
