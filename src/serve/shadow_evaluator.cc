#include "serve/shadow_evaluator.h"

namespace trajkit::serve {

double ShadowEvaluator::WindowStats::accuracy_delta() const {
  if (labeled == 0) return 0.0;
  return (static_cast<double>(shadow_correct) -
          static_cast<double>(active_correct)) /
         static_cast<double>(labeled);
}

double ShadowEvaluator::WindowStats::agreement_rate() const {
  if (scored == 0) return 0.0;
  return static_cast<double>(agreements) / static_cast<double>(scored);
}

ShadowEvaluator::ShadowEvaluator()
    : metric_samples_(
          obs::MetricsRegistry::Global().GetCounter("serve.shadow.samples")),
      metric_agreement_(
          obs::MetricsRegistry::Global().GetCounter("serve.shadow.agreement")),
      metric_accuracy_delta_(obs::MetricsRegistry::Global().GetGauge(
          "serve.shadow.accuracy_delta")),
      metric_latency_ratio_(obs::MetricsRegistry::Global().GetGauge(
          "serve.shadow.latency_ratio")) {}

void ShadowEvaluator::StartWindow(std::string_view shadow_version,
                                  double cost_ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  window_ = WindowStats{};
  window_.version = std::string(shadow_version);
  window_.open = true;
  window_.cost_ratio = cost_ratio;
  active_seconds_ = 0.0;
  shadow_seconds_ = 0.0;
  ExportGaugesLocked();
}

void ShadowEvaluator::EndWindow() {
  std::lock_guard<std::mutex> lock(mu_);
  window_.open = false;
}

void ShadowEvaluator::ObserveBatch(std::string_view shadow_version,
                                   size_t scored, size_t agreements,
                                   double active_seconds,
                                   double shadow_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!window_.open || window_.version != shadow_version) return;
  window_.scored += scored;
  window_.agreements += agreements;
  active_seconds_ += active_seconds;
  shadow_seconds_ += shadow_seconds;
  metric_samples_.Increment(static_cast<uint64_t>(scored));
  metric_agreement_.Increment(static_cast<uint64_t>(agreements));
  ExportGaugesLocked();
}

void ShadowEvaluator::ObserveOutcome(std::string_view shadow_version,
                                     int true_class, int active_label,
                                     int shadow_label) {
  if (shadow_label < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!window_.open || window_.version != shadow_version) return;
  ++window_.labeled;
  if (active_label == true_class) ++window_.active_correct;
  if (shadow_label == true_class) ++window_.shadow_correct;
  ExportGaugesLocked();
}

ShadowEvaluator::WindowStats ShadowEvaluator::window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

void ShadowEvaluator::ExportGaugesLocked() {
  metric_accuracy_delta_.Set(window_.accuracy_delta());
  metric_latency_ratio_.Set(
      active_seconds_ > 0.0 ? shadow_seconds_ / active_seconds_ : 0.0);
}

}  // namespace trajkit::serve
