#ifndef TRAJKIT_SERVE_SHADOW_EVALUATOR_H_
#define TRAJKIT_SERVE_SHADOW_EVALUATOR_H_

// Scores a shadow candidate against the active model over one evaluation
// window. Predictor workers feed it per-batch tallies (the shadow ran on
// the exact rows the active model served); the replay/serving driver
// feeds it labeled outcomes once ground truth is known. The continuous
// trainer reads the window at its deterministic step barriers to decide
// promote vs retire.
//
// Metric families (all under serve.shadow.*):
//   samples, agreement        — counters, deterministic under replay
//   accuracy_delta            — gauge, shadow minus active accuracy over
//                               the window's labeled outcomes
//   latency_ratio             — gauge, measured shadow/active batch
//                               predict time (observability only; the
//                               promotion policy gates on the
//                               deterministic node-count cost ratio)

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace trajkit::serve {

class ShadowEvaluator {
 public:
  /// One window's accumulated comparison. `scored`/`agreements` come from
  /// batch time (no labels yet); `labeled`/`*_correct` from gather time.
  struct WindowStats {
    std::string version;  ///< Shadow version under evaluation.
    bool open = false;
    /// Deterministic serving-cost proxy: shadow flat-forest nodes over
    /// active flat-forest nodes, fixed at window start. This — not the
    /// measured latency ratio — is what the promotion policy budgets, so
    /// verdicts don't depend on wall-clock noise.
    double cost_ratio = 1.0;
    size_t scored = 0;
    size_t agreements = 0;
    size_t labeled = 0;
    size_t active_correct = 0;
    size_t shadow_correct = 0;

    /// Shadow accuracy minus active accuracy over the labeled outcomes
    /// (0 when none yet).
    double accuracy_delta() const;
    double agreement_rate() const;
  };

  ShadowEvaluator();

  /// Opens a fresh window for `shadow_version`; drops any previous one.
  void StartWindow(std::string_view shadow_version, double cost_ratio);

  /// Closes the window (the candidate was promoted or retired). Stats
  /// remain readable until the next StartWindow.
  void EndWindow();

  /// Batch-time tally from a predictor worker: `scored` rows compared,
  /// `agreements` of them identical, plus the measured predict times.
  /// Ignored when the window is closed or `shadow_version` doesn't match
  /// (a stale in-flight batch from before a swap).
  void ObserveBatch(std::string_view shadow_version, size_t scored,
                    size_t agreements, double active_seconds,
                    double shadow_seconds);

  /// Gather-time labeled outcome for one request both models answered.
  /// Same staleness guard as ObserveBatch.
  void ObserveOutcome(std::string_view shadow_version, int true_class,
                      int active_label, int shadow_label);

  WindowStats window() const;

 private:
  void ExportGaugesLocked();

  mutable std::mutex mu_;
  WindowStats window_;
  double active_seconds_ = 0.0;
  double shadow_seconds_ = 0.0;

  obs::Counter& metric_samples_;
  obs::Counter& metric_agreement_;
  obs::Gauge& metric_accuracy_delta_;
  obs::Gauge& metric_latency_ratio_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_SHADOW_EVALUATOR_H_
