#ifndef TRAJKIT_SERVE_CONTINUOUS_TRAINING_H_
#define TRAJKIT_SERVE_CONTINUOUS_TRAINING_H_

// The continuous-training loop that closes train -> serve -> observe ->
// retrain: labeled closed segments accumulate in a bounded buffer, a
// background thread refits a candidate forest on a snapshot, the
// candidate is published into the registry's *shadow* slot (scored on the
// live batches by BatchPredictor + ShadowEvaluator, never served), and a
// promotion policy decides promote-vs-retire once the evaluation window
// matures. Drift detection — feature-distribution sketches plus the
// degradation-rung rate — forces an early refit.
//
// Determinism contract: the driver API (ObserveSegment / OnResult /
// StepDue / Step / Finish) is single-threaded — the replay ingest thread
// calls it — and every registry mutation happens inside Step()/Finish(),
// which the replay driver only invokes at barriers where all in-flight
// requests have been gathered. The refit launched at one barrier is
// *blocked on* (never polled) at the next, so which model answers which
// request is a pure function of the corpus: `serve-replay
// --continuous_training` is byte-identical at any thread/shard count.
// Only the background fit itself overlaps serving.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/label_sets.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "serve/model_registry.h"
#include "serve/session_manager.h"
#include "serve/shadow_evaluator.h"

namespace trajkit::serve {

/// When a matured shadow window earns promotion. Both thresholds are
/// deterministic under replay: the accuracy delta is computed from
/// labeled gather-time outcomes and the cost ratio from flat-forest node
/// counts (a serving-cost proxy that, unlike measured latency, cannot
/// flip a verdict between runs).
struct PromotionPolicy {
  /// Labeled outcomes the window must accumulate before any verdict.
  size_t min_samples = 64;
  /// Epsilon: shadow accuracy must beat active accuracy by at least this
  /// (negative values promote any candidate once the window matures —
  /// useful for demos/CI).
  double min_accuracy_delta = 0.0;
  /// Budget on shadow/active flat node count (the latency proxy).
  double max_cost_ratio = 4.0;
};

struct DriftOptions {
  bool enabled = true;
  /// Segments per distribution sketch: the baseline freezes over the
  /// first `window` labeled segments; the current sketch is the most
  /// recent `window`.
  size_t window = 128;
  /// Trigger when any feature's current mean drifts from the baseline
  /// mean by more than this many baseline standard deviations.
  double threshold = 8.0;
  /// Trigger when more than this fraction of gathered answers since the
  /// last step came off a degradation rung (0 disables; needs at least
  /// 16 answers in the step window).
  double max_degraded_rate = 0.0;
};

struct ContinuousTrainingOptions {
  /// Labeled closed segments between trainer step barriers (StepDue).
  size_t step_every = 16;
  /// Labeled segments between refits (>= step_every; a drift trigger
  /// overrides and refits at the next barrier).
  size_t refit_every = 64;
  /// Minimum buffered examples before any refit.
  size_t min_fit_samples = 64;
  /// Bounded labeled buffer (oldest dropped first).
  size_t buffer_capacity = 4096;
  /// Hyper-parameters for candidate forests. `seed` is the base; refit k
  /// fits with seed + k so candidates differ deterministically.
  ml::RandomForestParams forest;
  PromotionPolicy promotion;
  DriftOptions drift;
  /// Candidate versions are `version_prefix + N` with N starting at 2
  /// ("ct-v2", "ct-v3", ...; v1 is conventionally the bootstrap model).
  std::string version_prefix = "ct-v";
};

/// Drives refits/promotions against a ModelRegistry. Thread contract: all
/// public methods are driver-thread-only (see file comment); the only
/// internal concurrency is the background fit, which touches nothing but
/// its snapshot until Step() joins it.
class ContinuousTrainer {
 public:
  ContinuousTrainer(ModelRegistry* registry, core::LabelSet labels,
                    ContinuousTrainingOptions options);
  ~ContinuousTrainer();

  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;

  /// The evaluator BatchPredictorOptions::shadow_evaluator should point
  /// at, so batch-time scoring lands in this trainer's windows.
  ShadowEvaluator& evaluator() { return evaluator_; }

  /// A labeled closed segment entering the serving plane (`true_class`
  /// from the replay corpus's label set). Buffers the example and feeds
  /// the drift baseline.
  void ObserveSegment(const ClosedSegment& segment, int true_class);

  /// A gathered, successfully answered request: forwards the labeled
  /// outcome to the shadow window and tracks the degradation rate.
  void OnResult(int true_class, const Prediction& prediction);

  /// True when enough labeled segments arrived since the last Step that
  /// the driver should drain in-flight requests and call Step().
  bool StepDue() const;

  /// One barrier: join a due refit and publish it as shadow, deliver a
  /// promotion verdict on a matured window, run drift checks, and kick
  /// the next refit. Caller must have drained all in-flight requests.
  Status Step();

  /// Final barrier at end of stream: joins any in-flight refit and
  /// delivers a final verdict, but kicks nothing new.
  Status Finish();

  struct Stats {
    size_t segments_observed = 0;
    size_t steps = 0;
    size_t refits_launched = 0;
    size_t refits_completed = 0;
    size_t fit_failures = 0;
    size_t shadows_installed = 0;
    size_t promotions = 0;
    size_t rejections = 0;
    size_t drift_triggers = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct LabeledExample {
    std::vector<double> features;
    int label = 0;
  };

  Status StepImpl(bool allow_refit);
  void LaunchRefit();
  /// Distribution + degradation-rate checks; sets drift_pending_.
  void CheckDrift();

  ModelRegistry* registry_;
  core::LabelSet labels_;
  ContinuousTrainingOptions options_;
  ShadowEvaluator evaluator_;

  std::deque<LabeledExample> buffer_;
  size_t labeled_since_step_ = 0;
  size_t labeled_since_fit_ = 0;
  bool drift_pending_ = false;

  // Drift sketches: baseline Welford mean/M2 per feature, frozen once
  // drift.window segments accumulated.
  size_t baseline_count_ = 0;
  std::vector<double> baseline_mean_;
  std::vector<double> baseline_m2_;

  // Degradation-rate window, reset each Step.
  size_t window_results_ = 0;
  size_t window_degraded_ = 0;

  // The in-flight refit. Valid exactly between LaunchRefit and the next
  // Step/Finish/destructor join. The scratch is only ever touched from
  // inside the fit closure, and fits never overlap.
  std::future<Result<ServingModel>> fit_;
  ml::FlatForestScratch compile_scratch_;
  size_t next_version_ = 2;

  Stats stats_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_CONTINUOUS_TRAINING_H_
