#ifndef TRAJKIT_SERVE_FAULT_INJECTOR_H_
#define TRAJKIT_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace trajkit::serve {

/// Declarative chaos profile, parsed from the --fault_spec flag. The spec
/// is a ';'-separated list of fault clauses, each "name:key=value,...":
///
///   swap_stall:p=0.01,latency_ms=50    registry lookup stalls for
///                                      latency_ms and then fails for the
///                                      batch (simulated stuck hot-swap),
///                                      exercising the degradation chain
///   predict_fail:p=0.02                the batch's forest pass resolves
///                                      Unavailable (transient backend
///                                      failure), exercising retries
///   batch_delay:p=0.1,latency_ms=5     the batch is processed latency_ms
///                                      late, exercising deadline pressure
///   seed=42                            RNG seed for the fault draws
///
/// All probabilities are per dispatched batch. Example:
///   --fault_spec="swap_stall:p=0.01,latency_ms=50;predict_fail:p=0.02"
struct FaultSpec {
  double swap_stall_p = 0.0;
  double swap_stall_latency_ms = 0.0;
  double predict_fail_p = 0.0;
  double batch_delay_p = 0.0;
  double batch_delay_latency_ms = 0.0;
  uint64_t seed = 1234;

  /// Parses the spec syntax above; InvalidArgument on unknown clauses,
  /// unknown keys, malformed numbers, or probabilities outside [0, 1].
  static Result<FaultSpec> Parse(std::string_view spec);
};

/// Draws per-batch faults from a FaultSpec. Deterministic: one seeded Rng
/// consumed in batch-dispatch order (mutex-guarded — the worker thread and
/// Flush callers may dispatch concurrently). Injections are counted under
/// serve.faults.injected.<kind> so chaos runs are observable, and the
/// whole injector can be flipped off atomically (set_enabled) to prove
/// determinism parity with faults disabled on one wiring.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The faults to apply to one dispatched batch. All-false when disabled.
  struct BatchFaults {
    bool stall_registry = false;   ///< Registry unusable for this batch.
    bool fail_predict = false;     ///< Forest pass resolves Unavailable.
    double delay_seconds = 0.0;    ///< Sleep before processing the batch.

    /// True when any fault fired for this batch — its requests count as
    /// fault-injected (request traces tail-keep them).
    bool any() const {
      return stall_registry || fail_predict || delay_seconds > 0.0;
    }
  };
  BatchFaults Next();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  const FaultSpec& spec() const { return spec_; }

 private:
  const FaultSpec spec_;
  std::atomic<bool> enabled_{true};
  obs::Counter& metric_swap_stall_;
  obs::Counter& metric_predict_fail_;
  obs::Counter& metric_batch_delay_;
  std::mutex mu_;
  Rng rng_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_FAULT_INJECTOR_H_
