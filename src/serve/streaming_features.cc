#include "serve/streaming_features.h"

#include "common/check.h"
#include "geo/geodesy.h"

namespace trajkit::serve {

void StreamingFeatureExtractor::Add(const traj::TrajectoryPoint& point) {
  if (num_points_ == 0) {
    last_point_ = point;
    num_points_ = 1;
    return;
  }

  double dt = point.timestamp - last_point_.timestamp;
  if (dt < options_.min_duration_seconds) dt = options_.min_duration_seconds;
  const double distance = geo::HaversineMeters(last_point_.pos, point.pos);
  const double speed = distance / dt;
  const double bearing = geo::InitialBearingDeg(last_point_.pos, point.pos);

  // The batch kernel backfills index 0 with copies of index 1 *between* its
  // passes, so the derived channels at index 1 are computed against their
  // own value (yielding exact zeros). Replicating that: when this is the
  // second point, every "previous" operand is the current value itself.
  const bool second = num_points_ == 1;
  const double prev_speed = second ? speed : features_.speed.back();
  const double prev_bearing = second ? bearing : features_.bearing.back();
  const double acceleration = (speed - prev_speed) / dt;
  const double bearing_diff =
      options_.wrap_bearing_difference
          ? geo::BearingDifferenceDeg(prev_bearing, bearing)
          : bearing - prev_bearing;
  const double bearing_rate = bearing_diff / dt;
  const double prev_acceleration =
      second ? acceleration : features_.acceleration.back();
  const double prev_bearing_rate =
      second ? bearing_rate : features_.bearing_rate.back();
  const double jerk = (acceleration - prev_acceleration) / dt;
  const double bearing_rate_rate = (bearing_rate - prev_bearing_rate) / dt;

  // On the second point the index-0 copies are appended too, so the buffers
  // stay index-aligned with ComputePointFeatures' arrays.
  const int copies = second ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    features_.duration.push_back(dt);
    features_.distance.push_back(distance);
    features_.speed.push_back(speed);
    features_.acceleration.push_back(acceleration);
    features_.jerk.push_back(jerk);
    features_.bearing.push_back(bearing);
    features_.bearing_rate.push_back(bearing_rate);
    features_.bearing_rate_rate.push_back(bearing_rate_rate);
    for (int channel = 0; channel < traj::kNumFeatureChannels; ++channel) {
      live_[static_cast<size_t>(channel)].Add(
          traj::ChannelValues(features_, channel).back());
    }
  }

  last_point_ = point;
  ++num_points_;
}

const stats::RunningStats& StreamingFeatureExtractor::LiveStats(
    int channel) const {
  TRAJKIT_CHECK_GE(channel, 0);
  TRAJKIT_CHECK_LT(channel, traj::kNumFeatureChannels);
  return live_[static_cast<size_t>(channel)];
}

Result<std::vector<double>> StreamingFeatureExtractor::Flush() const {
  if (num_points_ < 2) {
    return Status::InvalidArgument(
        "open segment must have at least 2 points to extract features");
  }
  const traj::TrajectoryFeatureExtractor extractor(options_);
  return extractor.ExtractFromPointFeatures(features_);
}

void StreamingFeatureExtractor::Reset() {
  num_points_ = 0;
  features_ = traj::PointFeatures{};
  live_ = {};
}

}  // namespace trajkit::serve
