#include "serve/batch_predictor.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace trajkit::serve {

BatchPredictor::BatchPredictor(const ModelRegistry* registry,
                               BatchPredictorOptions options)
    : registry_(registry),
      options_(options),
      metric_requests_(obs::MetricsRegistry::Global().GetCounter(
          "serve.batch_predictor.requests")),
      metric_batches_(obs::MetricsRegistry::Global().GetCounter(
          "serve.batch_predictor.batches")),
      metric_queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "serve.batch_predictor.queue_depth")),
      metric_batch_size_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.batch_predictor.batch_size",
          obs::HistogramOptions::Exponential(1.0, 2.0, 11))),
      metric_latency_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.batch_predictor.latency_seconds",
          obs::HistogramOptions::LatencySeconds())) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchPredictor::~BatchPredictor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<Result<Prediction>> BatchPredictor::Submit(
    std::vector<double> features) {
  Request request;
  request.features = std::move(features);
  request.enqueue = std::chrono::steady_clock::now();
  std::future<Result<Prediction>> future = request.promise.get_future();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(request));
    ++counters_.requests;
    depth = pending_.size();
  }
  cv_.notify_one();
  // Metrics after the notify so the worker's wakeup is not delayed.
  metric_queue_depth_.Set(static_cast<double>(depth));
  metric_requests_.Increment();
  return future;
}

void BatchPredictor::Flush() {
  while (true) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) return;
      batch = TakeBatchLocked();
    }
    ProcessBatch(std::move(batch));
  }
}

BatchPredictor::Counters BatchPredictor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<BatchPredictor::Request> BatchPredictor::TakeBatchLocked() {
  const size_t take = std::min(pending_.size(), options_.max_batch_size);
  std::vector<Request> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  ++counters_.batches;
  counters_.max_batch = std::max(counters_.max_batch, take);
  // A gauge store is cheap enough to keep under the lock; the batch
  // histogram observes happen in ProcessBatch, outside it.
  metric_queue_depth_.Set(static_cast<double>(pending_.size()));
  return batch;
}

void BatchPredictor::WorkerLoop() {
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(options_.max_delay_seconds,
                                             0.0)));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    // Dispatch when the batch is full, the oldest request's deadline has
    // passed, or we are draining for shutdown.
    const auto deadline = pending_.front().enqueue + delay;
    if (!stop_ && pending_.size() < options_.max_batch_size &&
        std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline, [this] {
        return stop_ || pending_.size() >= options_.max_batch_size;
      });
      continue;
    }
    std::vector<Request> batch = TakeBatchLocked();
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void BatchPredictor::ProcessBatch(std::vector<Request> batch) {
  if (batch.empty()) return;
  metric_batches_.Increment();
  metric_batch_size_.Observe(static_cast<double>(batch.size()));
  const std::shared_ptr<const ServingModel> model = registry_->Current();
  if (model == nullptr) {
    for (Request& request : batch) {
      request.promise.set_value(
          Status::FailedPrecondition("no active model in the registry"));
    }
    return;
  }
  // Per-request validation first, so one malformed vector fails only its own
  // future instead of poisoning the batch.
  const size_t expected = static_cast<size_t>(model->num_input_features);
  std::vector<std::vector<double>> rows;
  std::vector<size_t> row_to_request;
  rows.reserve(batch.size());
  row_to_request.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].features.size() != expected) {
      batch[i].promise.set_value(Status::InvalidArgument(StrPrintf(
          "feature vector has %zu values, model '%s' expects %zu",
          batch[i].features.size(), model->version.c_str(), expected)));
      continue;
    }
    rows.push_back(std::move(batch[i].features));
    row_to_request.push_back(i);
  }
  if (rows.empty()) return;
  Result<std::vector<Prediction>> predictions = model->PredictBatch(rows);
  const auto done = std::chrono::steady_clock::now();
  if (!predictions.ok()) {
    for (const size_t i : row_to_request) {
      batch[i].promise.set_value(predictions.status());
    }
    return;
  }
  std::vector<Prediction>& values = predictions.value();
  for (size_t r = 0; r < row_to_request.size(); ++r) {
    Request& request = batch[row_to_request[r]];
    values[r].latency_seconds =
        std::chrono::duration<double>(done - request.enqueue).count();
    metric_latency_.Observe(values[r].latency_seconds);
    request.promise.set_value(std::move(values[r]));
  }
}

}  // namespace trajkit::serve
