#include "serve/batch_predictor.h"

#include <algorithm>
#include <utility>

#include "common/retry.h"
#include "common/strings.h"
#include "obs/request_trace.h"
#include "serve/fault_injector.h"
#include "serve/shadow_evaluator.h"

namespace trajkit::serve {

namespace {

/// Records a request's terminal outcome and, for bad outcomes, tail-keeps
/// its trace so the flight recorder cannot overwrite it before export.
void TraceTerminal(obs::RequestTracer& tracer, uint64_t trace_id,
                   const char* outcome, uint64_t at_ns, bool tail_keep) {
  if (trace_id == 0) return;
  tracer.RecordInstant(trace_id, outcome, obs::TracePhase::kTerminal, at_ns);
  if (tail_keep) tracer.Retain(trace_id);
}

}  // namespace

BatchPredictor::BatchPredictor(const ModelRegistry* registry,
                               BatchPredictorOptions options)
    : registry_(registry),
      options_(std::move(options)),
      metric_requests_(obs::MetricsRegistry::Global().GetCounter(
          "serve.batch_predictor.requests")),
      metric_batches_(obs::MetricsRegistry::Global().GetCounter(
          "serve.batch_predictor.batches")),
      metric_queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "serve.batch_predictor.queue_depth")),
      metric_batch_size_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.batch_predictor.batch_size",
          obs::HistogramOptions::Exponential(1.0, 2.0, 11))),
      metric_latency_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.batch_predictor.latency_seconds",
          obs::HistogramOptions::LatencySeconds())),
      metric_shed_(obs::MetricsRegistry::Global(), "serve.shed_total",
                   {"queue_full", "preempted"}),
      metric_degraded_(obs::MetricsRegistry::Global(), "serve.degraded_total",
                       {"previous_model", "majority_class"}),
      metric_deadline_exceeded_(obs::MetricsRegistry::Global().GetCounter(
          "serve.deadline_exceeded_total")),
      metric_unavailable_(obs::MetricsRegistry::Global().GetCounter(
          "serve.unavailable_total")) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  if (options_.shard >= 0) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const std::string prefix = StrPrintf("serve.shard%d.", options_.shard);
    shard_requests_ =
        &registry.GetCounter(prefix + "batch_predictor.requests");
    shard_shed_ = &registry.GetCounter(prefix + "shed_total");
    shard_deadline_exceeded_ =
        &registry.GetCounter(prefix + "deadline_exceeded_total");
    shard_degraded_ = &registry.GetCounter(prefix + "degraded_total");
    shard_unavailable_ = &registry.GetCounter(prefix + "unavailable_total");
    shard_queue_depth_ =
        &registry.GetGauge(prefix + "batch_predictor.queue_depth");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchPredictor::~BatchPredictor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<Result<Prediction>> BatchPredictor::Submit(
    PredictRequest predict_request) {
  Request request;
  request.features = std::move(predict_request.features);
  request.context = predict_request.context;
  request.enqueue = std::chrono::steady_clock::now();
  std::future<Result<Prediction>> future = request.promise.get_future();

  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  const bool traced = tracer.enabled();
  if (traced && request.context.trace_id == 0) {
    request.context.trace_id = tracer.Mint();
  }
  const uint64_t trace_id = request.context.trace_id;
  const uint64_t enqueue_ns = traced ? tracer.ToNs(request.enqueue) : 0;
  if (traced) {
    tracer.RecordInstant(trace_id, "submit", obs::TracePhase::kSubmit,
                         enqueue_ns, static_cast<uint64_t>(
                             request.context.priority < 0
                                 ? 0
                                 : request.context.priority));
  }

  // Fast-fail a request that arrives already expired: it would only be
  // swept later without ever being batchable. Counters are published
  // before the promise resolves, so a caller woken by the future always
  // sees them accounted.
  if (request.context.has_deadline() &&
      request.context.deadline <= request.enqueue) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_exceeded;
    }
    metric_deadline_exceeded_.Increment();
    if (shard_deadline_exceeded_ != nullptr) {
      shard_deadline_exceeded_->Increment();
    }
    request.promise.set_value(
        Status::DeadlineExceeded("request deadline passed before enqueue"));
    if (traced) {
      TraceTerminal(tracer, trace_id, "deadline_exceeded", tracer.NowNs(),
                    /*tail_keep=*/true);
    }
    return future;
  }

  size_t depth = 0;
  bool shed_incoming = false;
  bool shed_victim = false;
  uint64_t victim_trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_queue > 0 && pending_.size() >= options_.max_queue) {
      // High-watermark load shedding: drop the lowest-priority request.
      // min_element picks the first (= oldest) request of the lowest
      // priority class, the one closest to expiring anyway.
      auto victim = std::min_element(
          pending_.begin(), pending_.end(),
          [](const Request& a, const Request& b) {
            return a.context.priority < b.context.priority;
          });
      if (victim != pending_.end() &&
          victim->context.priority < request.context.priority) {
        victim_trace_id = victim->context.trace_id;
        victim->promise.set_value(Status::ResourceExhausted(StrPrintf(
            "shed: preempted by priority-%d request (queue full at %zu)",
            request.context.priority, pending_.size())));
        pending_.erase(victim);
        shed_victim = true;
      } else {
        request.promise.set_value(Status::ResourceExhausted(StrPrintf(
            "shed: queue full at %zu and no lower-priority victim",
            pending_.size())));
        shed_incoming = true;
      }
      ++counters_.shed;
    }
    if (!shed_incoming) {
      if (request.context.has_deadline()) {
        min_deadline_ = std::min(min_deadline_, request.context.deadline);
      }
      pending_.push_back(std::move(request));
      ++counters_.requests;
      depth = pending_.size();
    }
  }
  if (shed_incoming) {
    metric_shed_.Of("queue_full").Increment();
    if (shard_shed_ != nullptr) shard_shed_->Increment();
    if (traced) {
      TraceTerminal(tracer, trace_id, "shed", tracer.NowNs(),
                    /*tail_keep=*/true);
    }
    return future;
  }
  if (shed_victim) {
    metric_shed_.Of("preempted").Increment();
    if (shard_shed_ != nullptr) shard_shed_->Increment();
    if (traced) {
      TraceTerminal(tracer, victim_trace_id, "shed", tracer.NowNs(),
                    /*tail_keep=*/true);
    }
  }
  cv_.notify_one();
  // Metrics after the notify so the worker's wakeup is not delayed.
  SetQueueDepthGauge(static_cast<double>(depth));
  metric_requests_.Increment();
  if (shard_requests_ != nullptr) shard_requests_->Increment();
  return future;
}

void BatchPredictor::Flush() {
  while (true) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) return;
      batch = TakeBatchLocked();
    }
    ProcessBatch(std::move(batch));
  }
}

BatchPredictor::Counters BatchPredictor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void BatchPredictor::SweepExpiredLocked(
    std::chrono::steady_clock::time_point now) {
  if (now < min_deadline_) return;
  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  const bool traced = tracer.enabled();
  const uint64_t now_ns = traced ? tracer.ToNs(now) : 0;
  auto new_min = std::chrono::steady_clock::time_point::max();
  size_t expired = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->context.deadline <= now) {
      const uint64_t trace_id = it->context.trace_id;
      it->promise.set_value(Status::DeadlineExceeded(StrPrintf(
          "deadline passed while queued (waited %.3f ms)",
          std::chrono::duration<double, std::milli>(now - it->enqueue)
              .count())));
      ++counters_.deadline_exceeded;
      ++expired;
      it = pending_.erase(it);
      if (traced) {
        TraceTerminal(tracer, trace_id, "deadline_exceeded", now_ns,
                      /*tail_keep=*/true);
      }
    } else {
      new_min = std::min(new_min, it->context.deadline);
      ++it;
    }
  }
  min_deadline_ = new_min;
  if (expired > 0) {
    metric_deadline_exceeded_.Increment(static_cast<uint64_t>(expired));
    if (shard_deadline_exceeded_ != nullptr) {
      shard_deadline_exceeded_->Increment(static_cast<uint64_t>(expired));
    }
    SetQueueDepthGauge(static_cast<double>(pending_.size()));
  }
}

std::vector<BatchPredictor::Request> BatchPredictor::TakeBatchLocked() {
  const size_t take = std::min(pending_.size(), options_.max_batch_size);
  std::vector<Request> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  ++counters_.batches;
  counters_.max_batch = std::max(counters_.max_batch, take);
  // min_deadline_ may now be stale-early (it could belong to a taken
  // request); the next sweep recomputes it, at worst one spurious wakeup.
  // A gauge store is cheap enough to keep under the lock; the batch
  // histogram observes happen in ProcessBatch, outside it.
  SetQueueDepthGauge(static_cast<double>(pending_.size()));
  return batch;
}

void BatchPredictor::WorkerLoop() {
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(options_.max_delay_seconds,
                                             0.0)));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    SweepExpiredLocked(std::chrono::steady_clock::now());
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    // Dispatch when the batch is full, the oldest request's delay budget
    // has passed, or we are draining for shutdown. Wake early for the
    // nearest request deadline so expiries do not wait out the batch
    // delay. No predicate: the outer loop re-evaluates everything
    // (including deadlines that moved earlier while we slept).
    const auto dispatch_at = pending_.front().enqueue + delay;
    if (!stop_ && pending_.size() < options_.max_batch_size &&
        std::chrono::steady_clock::now() < dispatch_at) {
      cv_.wait_until(lock, std::min(dispatch_at, min_deadline_));
      continue;
    }
    std::vector<Request> batch = TakeBatchLocked();
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

bool BatchPredictor::AnswerWithLabelPrior(
    Request& request, std::chrono::steady_clock::time_point done) {
  if (options_.label_prior.empty()) return false;
  Prediction prediction;
  prediction.degradation = DegradationLevel::kMajorityClass;
  prediction.model_version = "label_prior";
  const auto& prior = options_.label_prior;
  double total = 0.0;
  for (const double weight : prior) total += weight;
  prediction.label = static_cast<int>(
      std::max_element(prior.begin(), prior.end()) - prior.begin());
  prediction.probabilities.resize(prior.size(), 0.0);
  for (size_t i = 0; i < prior.size(); ++i) {
    prediction.probabilities[i] = total > 0.0 ? prior[i] / total : 0.0;
  }
  prediction.latency_seconds =
      std::chrono::duration<double>(done - request.enqueue).count();
  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  const uint64_t trace_id = request.context.trace_id;
  uint64_t exemplar_id = 0;
  if (tracer.enabled() && trace_id != 0) {
    const uint64_t done_ns = tracer.ToNs(done);
    tracer.RecordInstant(trace_id, "degraded/majority_class",
                         obs::TracePhase::kDegraded, done_ns);
    TraceTerminal(tracer, trace_id, "done", done_ns, /*tail_keep=*/true);
    exemplar_id = trace_id;  // tail-kept, so the dump can resolve it
  }
  metric_latency_.Observe(prediction.latency_seconds, exemplar_id);
  metric_degraded_.Of("majority_class").Increment();
  if (shard_degraded_ != nullptr) shard_degraded_->Increment();
  request.promise.set_value(std::move(prediction));
  return true;
}

std::shared_ptr<const ServingModel> BatchPredictor::LastGoodModel() const {
  std::lock_guard<std::mutex> lock(last_good_mu_);
  return last_good_;
}

void BatchPredictor::SetQueueDepthGauge(double depth) {
  if (shard_queue_depth_ != nullptr) {
    shard_queue_depth_->Set(depth);
  } else {
    metric_queue_depth_.Set(depth);
  }
}

void BatchPredictor::ProcessBatch(std::vector<Request> batch) {
  if (batch.empty()) return;
  metric_batches_.Increment();
  metric_batch_size_.Observe(static_cast<double>(batch.size()));

  FaultInjector::BatchFaults faults;
  if (options_.fault_injector != nullptr) {
    faults = options_.fault_injector->Next();
  }
  if (faults.delay_seconds > 0.0) SleepForSeconds(faults.delay_seconds);

  // Deadline re-check at processing start: a request can expire between
  // dispatch and here (notably under an injected batch delay).
  const auto start = std::chrono::steady_clock::now();

  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  const bool traced = tracer.enabled();
  const uint64_t start_ns = traced ? tracer.ToNs(start) : 0;
  bool fault_hit = false;
  if (traced) {
    for (const Request& request : batch) {
      const uint64_t trace_id = request.context.trace_id;
      if (trace_id == 0) continue;
      // Queue span: enqueue -> batch-processing start (includes any
      // injected batch delay, which is exactly what the caller waited).
      tracer.RecordSpan(trace_id, "queue", obs::TracePhase::kQueue,
                        tracer.ToNs(request.enqueue), start_ns,
                        static_cast<uint64_t>(batch.size()));
      if (faults.delay_seconds > 0.0) {
        tracer.RecordInstant(trace_id, "fault/batch_delay",
                             obs::TracePhase::kFault, start_ns);
      }
      if (faults.stall_registry) {
        tracer.RecordInstant(trace_id, "fault/swap_stall",
                             obs::TracePhase::kFault, start_ns);
      }
      if (faults.fail_predict) {
        tracer.RecordInstant(trace_id, "fault/predict_fail",
                             obs::TracePhase::kFault, start_ns);
      }
    }
    fault_hit = faults.any();
  }

  // Counters are published before any promise resolves so a caller woken
  // by its future always finds its request accounted.
  std::vector<Request> live;
  live.reserve(batch.size());
  std::vector<Request> expired;
  for (Request& request : batch) {
    if (request.context.has_deadline() && request.context.deadline <= start) {
      expired.push_back(std::move(request));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (!expired.empty()) {
    metric_deadline_exceeded_.Increment(static_cast<uint64_t>(expired.size()));
    if (shard_deadline_exceeded_ != nullptr) {
      shard_deadline_exceeded_->Increment(
          static_cast<uint64_t>(expired.size()));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.deadline_exceeded += expired.size();
    }
    for (Request& request : expired) {
      const uint64_t trace_id = request.context.trace_id;
      request.promise.set_value(Status::DeadlineExceeded(
          "deadline passed before the batch was processed"));
      if (traced) {
        TraceTerminal(tracer, trace_id, "deadline_exceeded", start_ns,
                      /*tail_keep=*/true);
      }
    }
  }
  if (live.empty()) return;

  // Degradation rung 0 -> 1: active model from one coherent lease, else
  // the cached previous-good snapshot. An injected swap stall makes the
  // registry unusable for this batch, exactly like a wedged hot swap
  // would — no lease at all, so no shadow scoring either.
  DegradationLevel level = DegradationLevel::kNone;
  ModelLease lease;
  if (!faults.stall_registry) lease = registry_->Acquire();
  std::shared_ptr<const ServingModel> model = lease.active;
  if (model == nullptr) {
    lease.shadow = nullptr;
    model = LastGoodModel();
    if (model != nullptr) level = DegradationLevel::kPreviousModel;
  }

  // An injected transient predict failure: requests that still carry retry
  // budget resolve retryable (the caller resubmits with backoff); spent
  // requests drop to the majority-class rung so they terminate.
  if (faults.fail_predict) {
    size_t unavailable = 0;
    size_t degraded = 0;
    for (const Request& request : live) {
      // Mirrors the answer loop below: AnswerWithLabelPrior succeeds
      // exactly when a prior is configured.
      if (request.context.retry_budget <= 0 && !options_.label_prior.empty()) {
        ++degraded;
      } else {
        ++unavailable;
      }
    }
    metric_unavailable_.Increment(static_cast<uint64_t>(unavailable));
    if (shard_unavailable_ != nullptr) {
      shard_unavailable_->Increment(static_cast<uint64_t>(unavailable));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.unavailable += unavailable;
      counters_.degraded += degraded;
    }
    for (Request& request : live) {
      if (request.context.retry_budget <= 0 &&
          AnswerWithLabelPrior(request, start)) {
        continue;
      }
      const uint64_t trace_id = request.context.trace_id;
      request.promise.set_value(
          Status::Unavailable("injected transient predict failure"));
      if (traced) {
        TraceTerminal(tracer, trace_id, "unavailable", start_ns,
                      /*tail_keep=*/true);
      }
    }
    return;
  }

  // Degradation rung 2: no usable model at all — majority class from the
  // label prior, or the pre-degradation error when none is configured.
  if (model == nullptr) {
    if (!options_.label_prior.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.degraded += live.size();
    }
    for (Request& request : live) {
      if (AnswerWithLabelPrior(request, start)) continue;
      request.promise.set_value(
          Status::FailedPrecondition("no active model in the registry"));
    }
    return;
  }

  // Per-request validation first, so one malformed vector fails only its own
  // future instead of poisoning the batch.
  const size_t expected = static_cast<size_t>(model->num_input_features);
  std::vector<std::vector<double>> rows;
  std::vector<size_t> row_to_request;
  rows.reserve(live.size());
  row_to_request.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i].features.size() != expected) {
      const uint64_t trace_id = live[i].context.trace_id;
      live[i].promise.set_value(Status::InvalidArgument(StrPrintf(
          "feature vector has %zu values, model '%s' expects %zu",
          live[i].features.size(), model->version.c_str(), expected)));
      if (traced) {
        TraceTerminal(tracer, trace_id, "failed", start_ns,
                      /*tail_keep=*/true);
      }
      continue;
    }
    rows.push_back(std::move(live[i].features));
    row_to_request.push_back(i);
  }
  if (rows.empty()) return;
  const auto predict_start = std::chrono::steady_clock::now();
  Result<std::vector<Prediction>> predictions = model->PredictBatch(rows);
  const auto done = std::chrono::steady_clock::now();
  const uint64_t done_ns = traced ? tracer.ToNs(done) : 0;
  if (!predictions.ok()) {
    for (const size_t i : row_to_request) {
      const uint64_t trace_id = live[i].context.trace_id;
      live[i].promise.set_value(predictions.status());
      if (traced) {
        TraceTerminal(tracer, trace_id, "failed", done_ns,
                      /*tail_keep=*/true);
      }
    }
    return;
  }
  if (level == DegradationLevel::kNone) {
    std::lock_guard<std::mutex> lock(last_good_mu_);
    last_good_ = model;
  } else {
    metric_degraded_.Of("previous_model")
        .Increment(static_cast<uint64_t>(row_to_request.size()));
    if (shard_degraded_ != nullptr) {
      shard_degraded_->Increment(static_cast<uint64_t>(row_to_request.size()));
    }
    std::lock_guard<std::mutex> lock(mu_);
    counters_.degraded += row_to_request.size();
  }
  const uint64_t predict_start_ns = traced ? tracer.ToNs(predict_start) : 0;
  std::vector<Prediction>& values = predictions.value();

  // Shadow scoring: the candidate answers the exact rows the active model
  // just served. Its labels ride along inside the Prediction (never served
  // as the answer) and the per-batch agreement/latency tallies feed the
  // promotion policy. Only healthy active answers are compared — the
  // degraded rungs would skew the verdict. Tallies land in the evaluator
  // before any promise resolves, so a driver that has gathered every
  // future is guaranteed to see the complete window.
  uint64_t shadow_start_ns = 0;
  uint64_t shadow_done_ns = 0;
  if (level == DegradationLevel::kNone && lease.shadow != nullptr &&
      options_.shadow_evaluator != nullptr) {
    const auto shadow_start = std::chrono::steady_clock::now();
    Result<std::vector<Prediction>> shadowed =
        lease.shadow->PredictBatch(rows);
    const auto shadow_done = std::chrono::steady_clock::now();
    if (shadowed.ok()) {
      size_t agreements = 0;
      for (size_t r = 0; r < row_to_request.size(); ++r) {
        values[r].shadow_label = (*shadowed)[r].label;
        values[r].shadow_version = lease.shadow->version;
        if ((*shadowed)[r].label == values[r].label) ++agreements;
      }
      options_.shadow_evaluator->ObserveBatch(
          lease.shadow->version, row_to_request.size(), agreements,
          std::chrono::duration<double>(done - predict_start).count(),
          std::chrono::duration<double>(shadow_done - shadow_start).count());
      if (traced) {
        shadow_start_ns = tracer.ToNs(shadow_start);
        shadow_done_ns = tracer.ToNs(shadow_done);
      }
    }
  }

  for (size_t r = 0; r < row_to_request.size(); ++r) {
    Request& request = live[row_to_request[r]];
    values[r].degradation = level;
    values[r].latency_seconds =
        std::chrono::duration<double>(done - request.enqueue).count();
    uint64_t exemplar_id = 0;
    const uint64_t trace_id = request.context.trace_id;
    if (traced && trace_id != 0) {
      tracer.RecordSpan(trace_id, "batch", obs::TracePhase::kBatch, start_ns,
                        done_ns, static_cast<uint64_t>(live.size()));
      tracer.RecordSpan(trace_id, "predict", obs::TracePhase::kPredict,
                        predict_start_ns, done_ns,
                        static_cast<uint64_t>(rows.size()));
      if (values[r].shadow_label >= 0 && shadow_done_ns != 0) {
        tracer.RecordSpan(trace_id, "shadow", obs::TracePhase::kPredict,
                          shadow_start_ns, shadow_done_ns,
                          static_cast<uint64_t>(rows.size()));
      }
      if (level == DegradationLevel::kPreviousModel) {
        tracer.RecordInstant(trace_id, "degraded/previous_model",
                             obs::TracePhase::kDegraded, done_ns);
      }
      const bool tail_keep = level != DegradationLevel::kNone || fault_hit;
      TraceTerminal(tracer, trace_id, "done", done_ns, tail_keep);
      // Exemplars must resolve inside the trace dump: attach the id only
      // when this trace is exported (head-sampled or just tail-kept).
      if (tail_keep || tracer.Sampled(trace_id)) exemplar_id = trace_id;
    }
    metric_latency_.Observe(values[r].latency_seconds, exemplar_id);
    request.promise.set_value(std::move(values[r]));
  }
}

}  // namespace trajkit::serve
