#ifndef TRAJKIT_SERVE_BATCH_PREDICTOR_H_
#define TRAJKIT_SERVE_BATCH_PREDICTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"

namespace trajkit::serve {

/// Micro-batching knobs.
struct BatchPredictorOptions {
  /// A batch is dispatched as soon as this many requests are pending.
  size_t max_batch_size = 64;
  /// ... or once the oldest pending request has waited this long.
  double max_delay_seconds = 0.002;
};

/// Collects prediction requests across sessions into micro-batches and runs
/// them through the active model's forest on the shared thread pool
/// (`RandomForest::Predict` parallelizes over batch rows). Batching is a
/// pure throughput optimization: forest rows are independent, so a
/// request's answer is bit-identical whatever batch it lands in — the
/// per-request determinism contract (pinned by tests/serve_test.cc).
///
/// Each model snapshot is taken once per batch from the registry, so all
/// requests of a batch are served by one consistent
/// (forest, subset, normalizer) triple even across a hot swap.
class BatchPredictor {
 public:
  /// `registry` must outlive the predictor.
  explicit BatchPredictor(const ModelRegistry* registry,
                          BatchPredictorOptions options = {});

  /// Drains and answers every pending request, then stops the worker.
  ~BatchPredictor();

  BatchPredictor(const BatchPredictor&) = delete;
  BatchPredictor& operator=(const BatchPredictor&) = delete;

  /// Enqueues one full-width feature vector. The future resolves when the
  /// request's micro-batch is processed — with a Prediction, or with the
  /// error of a missing/mismatched model (a bad request only fails itself,
  /// not its batch neighbours).
  std::future<Result<Prediction>> Submit(std::vector<double> features);

  /// Processes everything currently pending on the calling thread (e.g.
  /// end-of-replay, before gathering futures).
  void Flush();

  /// Lifetime counters.
  struct Counters {
    size_t requests = 0;
    size_t batches = 0;
    size_t max_batch = 0;  // Largest batch dispatched.
  };
  Counters counters() const;

 private:
  struct Request {
    std::vector<double> features;
    std::promise<Result<Prediction>> promise;
    std::chrono::steady_clock::time_point enqueue;
  };

  /// Background loop: dispatches on the size or deadline trigger.
  void WorkerLoop();

  /// Takes up to max_batch_size requests off the queue. Precondition:
  /// `mu_` held.
  std::vector<Request> TakeBatchLocked();

  /// Answers one batch (model snapshot, per-row validation, forest).
  void ProcessBatch(std::vector<Request> batch);

  const ModelRegistry* registry_;
  BatchPredictorOptions options_;

  /// Global-registry handles, resolved once in the constructor so the
  /// enqueue/dispatch paths pay only relaxed atomic updates:
  /// serve.batch_predictor.{requests,batches} counters, queue_depth gauge,
  /// batch_size and latency_seconds (enqueue→completion) histograms.
  obs::Counter& metric_requests_;
  obs::Counter& metric_batches_;
  obs::Gauge& metric_queue_depth_;
  obs::Histogram& metric_batch_size_;
  obs::Histogram& metric_latency_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> pending_;
  bool stop_ = false;
  Counters counters_;
  std::thread worker_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_BATCH_PREDICTOR_H_
