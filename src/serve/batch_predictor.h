#ifndef TRAJKIT_SERVE_BATCH_PREDICTOR_H_
#define TRAJKIT_SERVE_BATCH_PREDICTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/request.h"

namespace trajkit::serve {

class FaultInjector;
class ShadowEvaluator;

/// Micro-batching + admission-control knobs.
struct BatchPredictorOptions {
  /// A batch is dispatched as soon as this many requests are pending.
  size_t max_batch_size = 64;
  /// ... or once the oldest pending request has waited this long.
  double max_delay_seconds = 0.002;
  /// Admission control: maximum queued requests. 0 = unbounded (default,
  /// the pre-admission-control behavior). When the queue is at the limit
  /// the lowest-priority request is shed first: an already-queued victim
  /// with strictly lower priority than the newcomer is preempted,
  /// otherwise the newcomer itself is rejected. Shed requests resolve
  /// with Status::ResourceExhausted and are counted per reason under
  /// serve.shed_total.{preempted,queue_full}.
  size_t max_queue = 0;
  /// Class prior (e.g. training-set label counts) backing the last rung of
  /// the degradation chain: when no model can serve a batch, requests are
  /// answered with the majority class of this prior instead of an error.
  /// Empty (default) disables the rung.
  std::vector<double> label_prior;
  /// Optional chaos injector (not owned; must outlive the predictor).
  /// nullptr = no fault injection.
  FaultInjector* fault_injector = nullptr;
  /// Shard index when this predictor is one shard of a ServingPlane; >= 0
  /// additionally mirrors the lifecycle counters under "serve.shard<i>.*"
  /// (requests, shed, deadline, degraded, unavailable, queue depth) so
  /// statusz and the CI shard-determinism matrix can attribute load per
  /// shard. -1 (default) = unsharded.
  int shard = -1;
  /// Shadow-scoring sink (not owned; must outlive the predictor). When set
  /// and the registry lease carries a shadow model, every healthy batch is
  /// additionally run through the shadow and the agreement/latency tallies
  /// are recorded here (see shadow_evaluator.h). nullptr = no shadow
  /// scoring, even if a shadow is published.
  ShadowEvaluator* shadow_evaluator = nullptr;
};

/// Collects prediction requests across sessions into micro-batches and runs
/// them through the active model's forest on the shared thread pool
/// (`RandomForest::Predict` parallelizes over batch rows). Batching is a
/// pure throughput optimization: forest rows are independent, so a
/// request's answer is bit-identical whatever batch it lands in — the
/// per-request determinism contract (pinned by tests/serve_test.cc).
///
/// Each model snapshot is taken once per batch from the registry, so all
/// requests of a batch are served by one consistent
/// (forest, subset, normalizer) triple even across a hot swap.
///
/// Request lifecycle (DESIGN.md §9): a submitted PredictRequest either
///  - is shed at admission (queue full, ResourceExhausted),
///  - expires while queued or before its batch runs (DeadlineExceeded),
///  - resolves Unavailable on a transient fault when it still has retry
///    budget (the caller resubmits, see common/retry.h), or
///  - is answered — by the active model, by the cached previous-good model
///    snapshot, or by the label-prior majority class, with the rung
///    recorded in Prediction::degradation.
/// Every submitted request resolves exactly one of these ways.
class BatchPredictor {
 public:
  /// `registry` must outlive the predictor.
  explicit BatchPredictor(const ModelRegistry* registry,
                          BatchPredictorOptions options = {});

  /// Drains and answers every pending request, then stops the worker.
  ~BatchPredictor();

  BatchPredictor(const BatchPredictor&) = delete;
  BatchPredictor& operator=(const BatchPredictor&) = delete;

  /// Enqueues one request. The future resolves when the request's
  /// micro-batch is processed — with a Prediction, or with a Status per
  /// the lifecycle above (a bad request only fails itself, not its batch
  /// neighbours).
  std::future<Result<Prediction>> Submit(PredictRequest request);

  /// Processes everything currently pending on the calling thread (e.g.
  /// end-of-replay, before gathering futures).
  void Flush();

  /// Lifetime counters.
  struct Counters {
    size_t requests = 0;           // Accepted into the queue.
    size_t batches = 0;
    size_t max_batch = 0;          // Largest batch dispatched.
    size_t shed = 0;               // Rejected or preempted at admission.
    size_t deadline_exceeded = 0;  // Expired while queued / pre-dispatch.
    size_t degraded = 0;           // Answered below DegradationLevel::kNone.
    size_t unavailable = 0;        // Resolved retryable (budget remaining).
  };
  Counters counters() const;

 private:
  struct Request {
    std::vector<double> features;
    RequestContext context;
    std::promise<Result<Prediction>> promise;
    std::chrono::steady_clock::time_point enqueue;
  };

  /// Background loop: dispatches on the size or delay trigger, waking
  /// early to expire deadlined requests.
  void WorkerLoop();

  /// Resolves every queued request whose deadline has passed with
  /// DeadlineExceeded and recomputes min_deadline_. Precondition: `mu_`
  /// held.
  void SweepExpiredLocked(std::chrono::steady_clock::time_point now);

  /// Takes up to max_batch_size requests off the queue. Precondition:
  /// `mu_` held.
  std::vector<Request> TakeBatchLocked();

  /// Answers one batch (fault draw, deadline re-check, degradation chain,
  /// per-row validation, forest).
  void ProcessBatch(std::vector<Request> batch);

  /// Resolves `request` with the label-prior majority class (degradation
  /// rung kMajorityClass). False when no prior is configured.
  bool AnswerWithLabelPrior(Request& request,
                            std::chrono::steady_clock::time_point done);

  /// Last model that successfully served an undegraded batch.
  std::shared_ptr<const ServingModel> LastGoodModel() const;

  /// Stores the queue depth into the per-shard gauge when sharded, the
  /// global one otherwise (shards must not clobber each other's depth).
  void SetQueueDepthGauge(double depth);

  const ModelRegistry* registry_;
  BatchPredictorOptions options_;

  /// Global-registry handles, resolved once in the constructor so the
  /// enqueue/dispatch paths pay only relaxed atomic updates:
  /// serve.batch_predictor.{requests,batches} counters, queue_depth gauge,
  /// batch_size and latency_seconds (enqueue→completion) histograms, plus
  /// the lifecycle outcome counters (serve.shed_total.*,
  /// serve.deadline_exceeded_total, serve.degraded_total.*,
  /// serve.unavailable_total).
  obs::Counter& metric_requests_;
  obs::Counter& metric_batches_;
  obs::Gauge& metric_queue_depth_;
  obs::Histogram& metric_batch_size_;
  obs::Histogram& metric_latency_;
  obs::CounterSet metric_shed_;      // serve.shed_total.<reason>
  obs::CounterSet metric_degraded_;  // serve.degraded_total.<level>
  obs::Counter& metric_deadline_exceeded_;
  obs::Counter& metric_unavailable_;
  /// Per-shard mirrors (serve.shard<i>.*), resolved only when
  /// BatchPredictorOptions::shard >= 0; null otherwise. The unlabelled
  /// metrics above stay the cross-shard aggregate (they are incremented
  /// regardless), except queue_depth: a sharded predictor writes only its
  /// own shard gauge so shards do not clobber each other's depth.
  obs::Counter* shard_requests_ = nullptr;
  obs::Counter* shard_shed_ = nullptr;
  obs::Counter* shard_deadline_exceeded_ = nullptr;
  obs::Counter* shard_degraded_ = nullptr;
  obs::Counter* shard_unavailable_ = nullptr;
  obs::Gauge* shard_queue_depth_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> pending_;
  /// Earliest deadline among queued requests; time_point::max() when none
  /// has one. May be stale-early after TakeBatchLocked (the sweep then
  /// finds nothing expired and recomputes) — never stale-late.
  std::chrono::steady_clock::time_point min_deadline_ =
      std::chrono::steady_clock::time_point::max();
  bool stop_ = false;
  Counters counters_;

  /// Degradation rung 1: the snapshot that served the most recent
  /// undegraded batch, used when the registry has no usable model.
  mutable std::mutex last_good_mu_;
  std::shared_ptr<const ServingModel> last_good_;

  std::thread worker_;
};

}  // namespace trajkit::serve

#endif  // TRAJKIT_SERVE_BATCH_PREDICTOR_H_
